"""Decode-step pipelines for the three compared inference engines.

Builds a :class:`~repro.gpu.simulator.Timeline` for one autoregressive
decode step (one token) of:

* ``dense``       -- llama.cpp-style: all GEMVs dense (the baseline),
* ``powerinfer``  -- DejaVu trained predictor + sparse GEMVs,
* ``sparseinfer`` -- sign-bit predictor + sparse GEMVs, with the paper's
  two optional measures: kernel fusion (+KF) and actual-sparsity
  exploitation (+AS).

Per-layer exploited densities come from a :class:`SparsityProfile`, which
is normally *measured* on the synthetic activation model (see
:mod:`repro.eval.latency`) so that the latency experiments inherit the
predictor's real precision/recall behaviour at each alpha.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..model.config import ModelConfig
from .device import DeviceSpec
from .kernels import (
    KernelCost,
    attention_kernels,
    dejavu_predict_kernel,
    dense_gemv,
    elementwise_gate_kernel,
    fused_sparse_mlp_kernel,
    lm_head_kernel,
    residual_add_kernel,
    rmsnorm_kernel,
    sign_pack_kernel,
    sparse_gemv,
    sparseinfer_predict_kernel,
)
from .simulator import Timeline


@dataclass(frozen=True)
class LayerSparsity:
    """Exploited skip fractions for one decoder layer.

    ``predicted_skip`` is the fraction of gate rows the predictor marks
    sparse (exploitable in *all* of steps 1-4); ``union_skip`` additionally
    folds in the actual sparsity discovered after step 1 (exploitable in
    steps 2-4 when +AS is on, Section IV).
    """

    predicted_skip: float
    union_skip: float

    def __post_init__(self):
        if not 0.0 <= self.predicted_skip <= 1.0:
            raise ValueError(f"predicted_skip out of range: {self.predicted_skip}")
        if not 0.0 <= self.union_skip <= 1.0:
            raise ValueError(f"union_skip out of range: {self.union_skip}")
        if self.union_skip < self.predicted_skip - 1e-12:
            raise ValueError("union_skip cannot be below predicted_skip")


@dataclass(frozen=True)
class SparsityProfile:
    """Per-layer exploited sparsity for a model/alpha combination."""

    layers: tuple

    @classmethod
    def uniform(
        cls, n_layers: int, predicted_skip: float, union_skip: Optional[float] = None
    ) -> "SparsityProfile":
        if union_skip is None:
            union_skip = predicted_skip
        layer = LayerSparsity(predicted_skip, union_skip)
        return cls(layers=tuple([layer] * n_layers))

    @classmethod
    def from_arrays(
        cls, predicted_skip: Sequence[float], union_skip: Sequence[float]
    ) -> "SparsityProfile":
        if len(predicted_skip) != len(union_skip):
            raise ValueError("array length mismatch")
        return cls(
            layers=tuple(
                LayerSparsity(float(p), float(u))
                for p, u in zip(predicted_skip, union_skip)
            )
        )

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, layer: int) -> LayerSparsity:
        return self.layers[layer]

    @property
    def mean_predicted_skip(self) -> float:
        return float(np.mean([l.predicted_skip for l in self.layers]))

    @property
    def mean_union_skip(self) -> float:
        return float(np.mean([l.union_skip for l in self.layers]))


@dataclass(frozen=True)
class EngineSpec:
    """Which engine to model, with its options and host-side overhead.

    ``host_overhead`` is the per-token CPU cost of graph construction /
    scheduling; PowerInfer's hybrid scheduler is heavier than llama.cpp's
    graph walk (calibration constants, see DESIGN.md section 5.5).
    """

    kind: str                      # "dense" | "powerinfer" | "sparseinfer"
    kernel_fusion: bool = False    # +KF (sparseinfer only)
    actual_sparsity: bool = False  # +AS (sparseinfer only)
    concurrent_gate_up: bool = False  # CKE alternative to sequential steps 1-2
    dejavu_rank: int = 1024        # powerinfer predictor rank
    host_overhead: float = 6.0e-3

    def __post_init__(self):
        if self.kind not in ("dense", "powerinfer", "sparseinfer"):
            raise ValueError(f"unknown engine kind {self.kind!r}")
        if self.concurrent_gate_up and (self.kernel_fusion
                                        or self.actual_sparsity):
            # Section IV: running steps 1 and 2 concurrently (CKE) rules
            # out both fusing them and recovering actual sparsity, since
            # the up GEMV starts before h1 exists.
            raise ValueError(
                "concurrent_gate_up excludes kernel_fusion/actual_sparsity"
            )

    @property
    def label(self) -> str:
        if self.kind != "sparseinfer":
            return self.kind
        suffix = ""
        if self.kernel_fusion:
            suffix += "+KF"
        if self.actual_sparsity:
            suffix += "+AS"
        return "sparseinfer" + suffix


def dense_engine() -> EngineSpec:
    return EngineSpec(kind="dense")


def powerinfer_engine(rank: int = 1024) -> EngineSpec:
    """PowerInfer's hybrid CPU/GPU scheduler costs more host time per token
    than llama.cpp's static graph walk (calibration constant)."""
    return EngineSpec(kind="powerinfer", dejavu_rank=rank, host_overhead=9.0e-3)


def sparseinfer_engine(
    kernel_fusion: bool = True, actual_sparsity: bool = True
) -> EngineSpec:
    return EngineSpec(
        kind="sparseinfer",
        kernel_fusion=kernel_fusion,
        actual_sparsity=actual_sparsity,
    )


def _mlp_kernels(
    config: ModelConfig,
    engine: EngineSpec,
    sparsity: LayerSparsity,
) -> list[KernelCost]:
    """Kernels of one layer's MLP block under the given engine."""
    d, k, dtype = config.d_model, config.d_ff, config.dtype_bytes
    if engine.kind == "dense":
        return [
            dense_gemv("gate", k, d, dtype),
            dense_gemv("up", k, d, dtype),
            elementwise_gate_kernel(k, 1.0, dtype),
            dense_gemv("down", d, k, dtype),
        ]

    if engine.kind == "powerinfer":
        density = 1.0 - sparsity.predicted_skip
        return [
            dejavu_predict_kernel(d, engine.dejavu_rank, k, dtype),
            sparse_gemv("gate", k, d, density, dtype),
            sparse_gemv("up", k, d, density, dtype),
            elementwise_gate_kernel(k, density, dtype),
            sparse_gemv("down", d, k, density, dtype, atomic_output=True),
        ]

    # SparseInfer (Section IV-B).
    gate_density = 1.0 - sparsity.predicted_skip
    late_skip = sparsity.union_skip if engine.actual_sparsity else sparsity.predicted_skip
    late_density = 1.0 - late_skip
    kernels = [
        sign_pack_kernel(d, dtype),
        sparseinfer_predict_kernel(k, d),
    ]
    if engine.kernel_fusion:
        kernels.append(
            fused_sparse_mlp_kernel(d, k, gate_density, late_density, dtype)
        )
    elif engine.concurrent_gate_up:
        # Section IV alternative: steps 1 and 2 on separate streams (CKE).
        # Both GEMVs are memory bound, so the shared DRAM bus serialises
        # them anyway -- which is why the paper prefers sequential + AS.
        from .simulator import ConcurrentGroup

        kernels.append(
            ConcurrentGroup(
                kernels=(
                    sparse_gemv("gate", k, d, gate_density, dtype),
                    sparse_gemv("up", k, d, late_density, dtype),
                )
            )
        )
        kernels.append(elementwise_gate_kernel(k, late_density, dtype))
    else:
        kernels.extend(
            [
                sparse_gemv("gate", k, d, gate_density, dtype),
                sparse_gemv("up", k, d, late_density, dtype),
                elementwise_gate_kernel(k, late_density, dtype),
            ]
        )
    kernels.append(
        sparse_gemv("down", d, k, late_density, dtype, atomic_output=True)
    )
    return kernels


def decode_step_timeline(
    config: ModelConfig,
    engine: EngineSpec,
    profile: Optional[SparsityProfile] = None,
    seq_len: int = 512,
) -> Timeline:
    """Timeline of one full decode step (one generated token).

    ``profile`` may be omitted for the dense engine only.
    """
    if engine.kind != "dense":
        if profile is None:
            raise ValueError(f"{engine.kind} engine needs a SparsityProfile")
        if len(profile) != config.n_layers:
            raise ValueError(
                f"profile has {len(profile)} layers, model has {config.n_layers}"
            )
    d, dtype = config.d_model, config.dtype_bytes
    timeline = Timeline(fixed_overhead=engine.host_overhead)
    for layer in range(config.n_layers):
        timeline.add(rmsnorm_kernel(d, dtype))
        timeline.extend(attention_kernels(d, config.n_heads, seq_len, dtype))
        timeline.add(residual_add_kernel(d, dtype))
        timeline.add(rmsnorm_kernel(d, dtype))
        sparsity = profile[layer] if profile is not None else LayerSparsity(0.0, 0.0)
        timeline.extend(_mlp_kernels(config, engine, sparsity))
        timeline.add(residual_add_kernel(d, dtype))
    timeline.add(rmsnorm_kernel(d, dtype))
    timeline.add(lm_head_kernel(d, config.vocab_size, dtype))
    return timeline


def prefill_timeline(config: ModelConfig, n_tokens: int) -> Timeline:
    """Prompt-phase timeline: dense batched GEMMs over all layers.

    SparseInfer exploits sparsity only while decoding (Section V-C);
    prefill amortises each weight read over ``n_tokens`` tokens and is
    compute bound for long prompts, so row-skipping would buy little.
    """
    from .kernels import prefill_gemm

    d, k, dtype = config.d_model, config.d_ff, config.dtype_bytes
    timeline = Timeline(fixed_overhead=6.0e-3)
    for _ in range(config.n_layers):
        timeline.add(prefill_gemm("wqkv", 3 * d, d, n_tokens, dtype))
        timeline.add(
            KernelCost(
                name="attn_prefill",
                bytes_streamed=2.0 * n_tokens * d * dtype,
                flops_cuda=2.0 * n_tokens * n_tokens * d,
                fp16=dtype <= 2,
            )
        )
        timeline.add(prefill_gemm("wo", d, d, n_tokens, dtype))
        timeline.add(prefill_gemm("gate", k, d, n_tokens, dtype))
        timeline.add(prefill_gemm("up", k, d, n_tokens, dtype))
        timeline.add(prefill_gemm("down", d, k, n_tokens, dtype))
    timeline.add(prefill_gemm("lm_head", config.vocab_size, d, 1, dtype))
    return timeline


@dataclass(frozen=True)
class LatencyReport:
    """Latency of one engine configuration on one model."""

    engine_label: str
    model_name: str
    seconds_per_token: float
    breakdown: dict = field(default_factory=dict)

    @property
    def tokens_per_second(self) -> float:
        return 1.0 / self.seconds_per_token

    def speedup_over(self, other: "LatencyReport") -> float:
        return other.seconds_per_token / self.seconds_per_token


def decode_latency(
    config: ModelConfig,
    engine: EngineSpec,
    device: DeviceSpec,
    profile: Optional[SparsityProfile] = None,
    seq_len: int = 512,
) -> LatencyReport:
    """Convenience wrapper: build the timeline and evaluate it."""
    timeline = decode_step_timeline(config, engine, profile, seq_len)
    return LatencyReport(
        engine_label=engine.label,
        model_name=config.name,
        seconds_per_token=timeline.latency(device),
        breakdown=timeline.breakdown(device),
    )

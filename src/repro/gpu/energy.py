"""Energy model for DSE on embedded targets (DATE-flavoured extension).

The paper frames alpha as a knob for design-space exploration on a given
platform; on Jetson-class boards the first-order objective next to
latency is energy.  We extend the roofline with a simple two-component
energy model:

    E(token) = P_static * latency + e_dram * bytes_moved + e_mac * ops

with coefficients in the range published for LPDDR5 + Ampere-class
embedded silicon.  Absolute joules are indicative; *ratios* between
engine configurations are the DSE signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.config import ModelConfig
from .device import DeviceSpec
from .pipeline import EngineSpec, SparsityProfile, decode_step_timeline
from .simulator import ConcurrentGroup, Timeline


@dataclass(frozen=True)
class EnergyModel:
    """Per-component energy coefficients.

    Attributes
    ----------
    static_power:
        Board idle + leakage power in watts while decoding.
    dram_energy_per_byte:
        LPDDR5 access energy, ~4-6 pJ/bit -> ~40 pJ/byte.
    op_energy:
        Energy per arithmetic op (FP16 MAC / INT op averaged).
    """

    static_power: float = 15.0
    dram_energy_per_byte: float = 40e-12
    op_energy: float = 1.2e-12

    def __post_init__(self):
        if self.static_power < 0:
            raise ValueError("static_power must be non-negative")
        if self.dram_energy_per_byte <= 0 or self.op_energy <= 0:
            raise ValueError("per-unit energies must be positive")


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one decode step (one token)."""

    engine_label: str
    joules_per_token: float
    latency: float

    @property
    def tokens_per_joule(self) -> float:
        return 1.0 / self.joules_per_token

    @property
    def energy_delay_product(self) -> float:
        """EDP, the classic embedded figure of merit."""
        return self.joules_per_token * self.latency


def _timeline_ops(timeline: Timeline) -> float:
    total = 0.0
    for item in timeline.items:
        kernels = item.kernels if isinstance(item, ConcurrentGroup) else (item,)
        for k in kernels:
            total += k.total_ops
    return total


def decode_energy(
    config: ModelConfig,
    engine: EngineSpec,
    device: DeviceSpec,
    profile: SparsityProfile = None,
    seq_len: int = 512,
    model: EnergyModel = EnergyModel(),
) -> EnergyReport:
    """Energy per generated token for one engine configuration."""
    timeline = decode_step_timeline(config, engine, profile, seq_len)
    latency = timeline.latency(device)
    joules = (
        model.static_power * latency
        + model.dram_energy_per_byte * timeline.total_bytes
        + model.op_energy * _timeline_ops(timeline)
    )
    return EnergyReport(
        engine_label=engine.label,
        joules_per_token=joules,
        latency=latency,
    )

"""Memory-footprint accounting (paper Section V-A.2).

Reproduces the predictor memory comparison:

* PowerInfer/DejaVu at rank 1024 on ProSparse-Llama2-13B:
  ``(5120*1024 + 1024*13824) * 2 bytes * 40 layers = 1480 MB``
* SparseInfer packed sign bits:
  ``13824 * 160 words * 4 bytes * 40 layers = 337.5 MB`` (4.38x less)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.signpack import WORD_BITS, words_per_row
from ..model.config import ModelConfig

MIB = 1024.0 * 1024.0


@dataclass(frozen=True)
class MemoryReport:
    """Bytes attributable to each component of an engine's resident set."""

    model_name: str
    weights_bytes: float
    kv_cache_bytes: float
    predictor_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weights_bytes + self.kv_cache_bytes + self.predictor_bytes

    @property
    def predictor_mib(self) -> float:
        return self.predictor_bytes / MIB


def weight_bytes(config: ModelConfig) -> float:
    """Resident model weights (attention + MLP + embeddings)."""
    per_layer = config.mlp_params_per_layer + config.attn_params_per_layer
    embed = 2 * config.vocab_size * config.d_model
    return (config.n_layers * per_layer + embed) * config.dtype_bytes


def kv_cache_bytes(config: ModelConfig, seq_len: int) -> float:
    """Key+value cache for ``seq_len`` positions across all layers."""
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")
    return 2.0 * config.n_layers * seq_len * config.d_model * config.dtype_bytes


def dejavu_predictor_bytes(config: ModelConfig, rank: int = 1024) -> float:
    """Per-model footprint of the trained DejaVu predictor (PowerInfer).

    One rank-``r`` two-layer FC predictor per MLP block, stored FP16:
    ``(d*r + r*k) * dtype * n_layers``.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    per_layer = (config.d_model * rank + rank * config.d_ff) * config.dtype_bytes
    return float(per_layer * config.n_layers)


def sparseinfer_predictor_bytes(config: ModelConfig) -> float:
    """Per-model footprint of SparseInfer's packed sign bits.

    One bit per ``Wgate`` element, packed in 32-bit words:
    ``k * ceil(d/32) * 4 bytes * n_layers``.
    """
    words = words_per_row(config.d_model)
    return float(config.d_ff * words * (WORD_BITS // 8) * config.n_layers)


def engine_memory(
    config: ModelConfig,
    engine_kind: str,
    seq_len: int = 0,
    dejavu_rank: int = 1024,
) -> MemoryReport:
    """Full resident-set report for one engine on one model."""
    if engine_kind == "dense":
        predictor = 0.0
    elif engine_kind == "powerinfer":
        predictor = dejavu_predictor_bytes(config, dejavu_rank)
    elif engine_kind == "sparseinfer":
        predictor = sparseinfer_predictor_bytes(config)
    else:
        raise ValueError(f"unknown engine kind {engine_kind!r}")
    return MemoryReport(
        model_name=config.name,
        weights_bytes=weight_bytes(config),
        kv_cache_bytes=kv_cache_bytes(config, seq_len),
        predictor_bytes=predictor,
    )

"""Device models for the analytical GPU cost simulator.

The paper's testbed is an NVIDIA Jetson Orin AGX 64GB (Ampere iGPU sharing
LPDDR5 with the Cortex CPU).  Autoregressive decoding of a 7B/13B model is
overwhelmingly memory-bandwidth bound, so a roofline model -- per-kernel
latency = launch overhead + max(bytes / effective bandwidth, work /
compute throughput) -- captures the latency *ratios* the paper reports.

All throughput numbers come from the public Orin AGX spec sheet; the
efficiency factors are calibration constants (documented in DESIGN.md) for
achievable-vs-peak bandwidth and the penalty a row-gathering sparse GEMV
pays relative to a streaming dense one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Roofline parameters of one GPU.

    Attributes
    ----------
    dram_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    cuda_flops_fp32 / cuda_flops_fp16:
        Peak FMA throughput of the CUDA cores (FLOP/s).
    cuda_int_ops:
        Peak 32-bit bitwise/integer op throughput of the CUDA cores
        (ops/s); XOR and ``__popc`` run here, not on tensor cores
        (paper Section V-A.1).
    tensor_flops_fp16:
        Peak FP16 tensor-core throughput; the DejaVu predictor's FC layers
        run here.
    kernel_launch_latency:
        Per-kernel launch + dispatch overhead in seconds.
    mem_efficiency:
        Achievable fraction of peak bandwidth for streaming (dense) reads.
    sparse_gather_efficiency:
        Achievable fraction of peak bandwidth when a GEMV gathers a sparse
        row subset (uncoalesced row starts, wasted DRAM bursts).
    atomic_add_latency:
        Extra cost per atomicAdd performed by the down-projection kernel
        (paper Section IV-B.4).
    """

    name: str
    dram_bandwidth: float
    cuda_flops_fp32: float
    cuda_flops_fp16: float
    cuda_int_ops: float
    tensor_flops_fp16: float
    kernel_launch_latency: float = 5.0e-6
    mem_efficiency: float = 0.72
    sparse_gather_efficiency: float = 0.20
    atomic_add_latency: float = 2.0e-9

    def __post_init__(self):
        for field_name in (
            "dram_bandwidth",
            "cuda_flops_fp32",
            "cuda_flops_fp16",
            "cuda_int_ops",
            "tensor_flops_fp16",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        for field_name in ("mem_efficiency", "sparse_gather_efficiency"):
            v = getattr(self, field_name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1], got {v}")

    @property
    def effective_bandwidth(self) -> float:
        """Achievable streaming bandwidth in bytes/s."""
        return self.dram_bandwidth * self.mem_efficiency

    @property
    def effective_sparse_bandwidth(self) -> float:
        """Achievable bandwidth for row-gathered sparse GEMV reads."""
        return self.dram_bandwidth * self.sparse_gather_efficiency

    def scaled(self, **overrides) -> "DeviceSpec":
        """Copy with some fields replaced (DSE over hypothetical devices)."""
        return replace(self, **overrides)


def jetson_orin_agx_64gb() -> DeviceSpec:
    """NVIDIA Jetson Orin AGX 64GB (Ampere, 2048 CUDA cores, 64 tensor
    cores, 204.8 GB/s LPDDR5) -- the paper's platform."""
    return DeviceSpec(
        name="Jetson-Orin-AGX-64GB",
        dram_bandwidth=204.8e9,
        cuda_flops_fp32=5.32e12,
        cuda_flops_fp16=10.64e12,
        cuda_int_ops=2.66e12,
        tensor_flops_fp16=42.5e12,
    )


def jetson_orin_nx_16gb() -> DeviceSpec:
    """Smaller Orin NX for DSE what-if studies (102.4 GB/s LPDDR5)."""
    return DeviceSpec(
        name="Jetson-Orin-NX-16GB",
        dram_bandwidth=102.4e9,
        cuda_flops_fp32=1.88e12,
        cuda_flops_fp16=3.76e12,
        cuda_int_ops=0.94e12,
        tensor_flops_fp16=15.0e12,
    )


def rtx_4090() -> DeviceSpec:
    """Desktop-class reference point for DSE (1 TB/s GDDR6X)."""
    return DeviceSpec(
        name="RTX-4090",
        dram_bandwidth=1008e9,
        cuda_flops_fp32=82.6e12,
        cuda_flops_fp16=165.2e12,
        cuda_int_ops=41.3e12,
        tensor_flops_fp16=330.3e12,
        kernel_launch_latency=3.0e-6,
    )

"""Analytical GPU roofline model of the paper's Jetson Orin testbed."""

from .device import DeviceSpec, jetson_orin_agx_64gb, jetson_orin_nx_16gb, rtx_4090
from .kernels import KernelCost
from .memory import engine_memory
from .pipeline import (
    EngineSpec,
    LatencyReport,
    SparsityProfile,
    decode_latency,
    dense_engine,
    powerinfer_engine,
    sparseinfer_engine,
)
from .simulator import ConcurrentGroup, Timeline

"""Batched-decoding analysis: how activation sparsity decays with batch.

The paper (like PowerInfer and DejaVu) evaluates single-sequence decoding
(batch = 1), where a skipped gate row saves its entire weight read.  With
a decode batch of ``B`` sequences the row can only be skipped if *every*
sequence in the batch predicts it sparse -- the exploitable skip set is
the **intersection** across the batch, so the exploitable fraction decays
roughly as ``skip^B`` for independent sequences (correlated activations
decay slower; the ``correlation`` parameter interpolates).

This module extends the roofline pipeline with batch-aware MLP costs so
the DSE can answer "at what batch size does SparseInfer stop paying
off?" -- the classic serving-vs-edge trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..model.config import ModelConfig
from .device import DeviceSpec
from .kernels import (
    KernelCost,
    attention_kernels,
    dense_gemv,
    elementwise_gate_kernel,
    residual_add_kernel,
    rmsnorm_kernel,
    sign_pack_kernel,
    sparse_gemv,
    sparseinfer_predict_kernel,
    lm_head_kernel,
)
from .pipeline import SparsityProfile
from .simulator import Timeline


def batch_skip_fraction(
    single_skip: float, batch_size: int, correlation: float = 0.0
) -> float:
    """Exploitable skip fraction for a batch of ``batch_size`` sequences.

    ``correlation = 0`` models independent sequences (intersection decays
    as ``skip^B``); ``correlation = 1`` models perfectly aligned
    activations (no decay).  Linear interpolation in between, matching
    the empirical behaviour that co-batched continuations of similar
    prompts share much of their live set.
    """
    if not 0.0 <= single_skip <= 1.0:
        raise ValueError(f"single_skip out of range: {single_skip}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation out of range: {correlation}")
    independent = single_skip ** batch_size
    return correlation * single_skip + (1.0 - correlation) * independent


def _batched(kernel: KernelCost, batch_size: int) -> KernelCost:
    """Scale a per-token kernel's activation traffic and compute by B.

    Weight bytes are shared across the batch (the whole point of
    batching); activation vectors and FLOPs scale linearly.  GEMV-family
    kernels here carry weights in ``bytes_rowgather``/first-order
    ``bytes_streamed``; we scale only compute and a nominal activation
    term, which keeps the model simple and conservative.
    """
    return KernelCost(
        name=kernel.name,
        bytes_streamed=kernel.bytes_streamed,
        bytes_gathered=kernel.bytes_gathered,
        bytes_rowgather=kernel.bytes_rowgather,
        gather_density=kernel.gather_density,
        flops_cuda=kernel.flops_cuda * batch_size,
        flops_tensor=kernel.flops_tensor * batch_size,
        int_ops=kernel.int_ops * batch_size,
        atomic_ops=kernel.atomic_ops * batch_size,
        fp16=kernel.fp16,
    )


@dataclass(frozen=True)
class BatchedLatencyPoint:
    """One (batch size, engine) operating point."""

    batch_size: int
    seconds_per_step: float
    exploited_skip: float

    @property
    def seconds_per_token(self) -> float:
        return self.seconds_per_step / self.batch_size

    @property
    def tokens_per_second(self) -> float:
        return self.batch_size / self.seconds_per_step


def batched_decode_latency(
    config: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
    profile: Optional[SparsityProfile] = None,
    correlation: float = 0.0,
    seq_len: int = 512,
    host_overhead: float = 6.0e-3,
) -> BatchedLatencyPoint:
    """One decode step for a batch; dense when ``profile`` is None."""
    d, k, dtype = config.d_model, config.d_ff, config.dtype_bytes
    timeline = Timeline(fixed_overhead=host_overhead)
    skips = []
    for layer in range(config.n_layers):
        timeline.add(_batched(rmsnorm_kernel(d, dtype), batch_size))
        for kern in attention_kernels(d, config.n_heads, seq_len, dtype):
            # KV-cache reads scale with batch (one cache per sequence).
            scaled = KernelCost(
                name=kern.name,
                bytes_streamed=(
                    kern.bytes_streamed * batch_size
                    if kern.name == "attn_scores_softmax_wsum"
                    else kern.bytes_streamed
                ),
                bytes_rowgather=kern.bytes_rowgather,
                gather_density=kern.gather_density,
                flops_cuda=kern.flops_cuda * batch_size,
                fp16=kern.fp16,
            )
            timeline.add(scaled)
        timeline.add(_batched(residual_add_kernel(d, dtype), batch_size))
        timeline.add(_batched(rmsnorm_kernel(d, dtype), batch_size))
        if profile is None:
            timeline.add(_batched(dense_gemv("gate", k, d, dtype), batch_size))
            timeline.add(_batched(dense_gemv("up", k, d, dtype), batch_size))
            timeline.add(
                _batched(elementwise_gate_kernel(k, 1.0, dtype), batch_size)
            )
            timeline.add(_batched(dense_gemv("down", d, k, dtype), batch_size))
        else:
            single = profile[layer]
            skip_b = batch_skip_fraction(
                single.union_skip, batch_size, correlation
            )
            skips.append(skip_b)
            density = 1.0 - skip_b
            timeline.add(_batched(sign_pack_kernel(d, dtype), batch_size))
            timeline.add(
                _batched(sparseinfer_predict_kernel(k, d), batch_size)
            )
            for name, rows, cols in (("gate", k, d), ("up", k, d)):
                timeline.add(
                    _batched(sparse_gemv(name, rows, cols, density, dtype),
                             batch_size)
                )
            timeline.add(
                _batched(elementwise_gate_kernel(k, density, dtype),
                         batch_size)
            )
            timeline.add(
                _batched(
                    sparse_gemv("down", d, k, density, dtype,
                                atomic_output=True),
                    batch_size,
                )
            )
        timeline.add(_batched(residual_add_kernel(d, dtype), batch_size))
    timeline.add(_batched(rmsnorm_kernel(d, dtype), batch_size))
    timeline.add(_batched(lm_head_kernel(d, config.vocab_size, dtype),
                          batch_size))
    return BatchedLatencyPoint(
        batch_size=batch_size,
        seconds_per_step=timeline.latency(device),
        exploited_skip=float(np.mean(skips)) if skips else 0.0,
    )


def batch_sweep(
    config: ModelConfig,
    device: DeviceSpec,
    profile: SparsityProfile,
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    correlation: float = 0.0,
    seq_len: int = 512,
) -> list:
    """Speedup of SparseInfer over dense at each batch size."""
    out = []
    for batch in batch_sizes:
        dense = batched_decode_latency(
            config, device, batch, None, seq_len=seq_len
        )
        sparse = batched_decode_latency(
            config, device, batch, profile, correlation, seq_len=seq_len
        )
        out.append(
            {
                "batch_size": batch,
                "dense": dense,
                "sparse": sparse,
                "speedup": dense.seconds_per_step / sparse.seconds_per_step,
            }
        )
    return out

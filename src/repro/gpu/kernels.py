"""Kernel cost descriptors and builders for the decode pipeline.

Each :class:`KernelCost` records how much memory a kernel moves and how
much arithmetic it performs on each execution unit; :meth:`latency` applies
the device roofline.  Builders construct the kernels appearing in one
decoder layer of the three engines compared in the paper:

* llama.cpp-style dense GEMVs,
* PowerInfer: DejaVu FC predictor (tensor cores) + sparse GEMVs,
* SparseInfer: sign-pack + XOR/popcount predictor (CUDA cores) + sparse
  GEMVs, optionally fused (Section IV-B.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Work performed by one kernel launch.

    ``bytes_streamed`` flows at the device's dense streaming efficiency;
    ``bytes_gathered`` at its sparse-gather efficiency (row-skipping GEMV
    reads).  Arithmetic on the three pipes overlaps with memory; the
    roofline takes the max.
    """

    name: str
    bytes_streamed: float = 0.0
    bytes_gathered: float = 0.0
    bytes_rowgather: float = 0.0   # row-subset reads; see gather_density
    gather_density: float = 1.0    # surviving-row fraction of those reads
    flops_cuda: float = 0.0
    flops_tensor: float = 0.0
    int_ops: float = 0.0
    atomic_ops: float = 0.0
    fp16: bool = True

    def __post_init__(self):
        for f in ("bytes_streamed", "bytes_gathered", "bytes_rowgather",
                  "flops_cuda", "flops_tensor", "int_ops", "atomic_ops"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")
        if not 0.0 <= self.gather_density <= 1.0:
            raise ValueError(
                f"gather_density must be in [0, 1], got {self.gather_density}"
            )

    @property
    def total_bytes(self) -> float:
        return self.bytes_streamed + self.bytes_gathered + self.bytes_rowgather

    @property
    def total_ops(self) -> float:
        return self.flops_cuda + self.flops_tensor + self.int_ops

    def memory_time(self, device: DeviceSpec) -> float:
        """Roofline memory time.

        ``bytes_rowgather`` moves at a bandwidth that blends linearly from
        gather efficiency (density -> 0) to streaming efficiency
        (density = 1): the denser the survivor set, the closer row reads
        are to a sequential scan.  The blend keeps latency monotone in
        density and exactly matches :func:`dense_gemv` at density 1.
        """
        time = (
            self.bytes_streamed / device.effective_bandwidth
            + self.bytes_gathered / device.effective_sparse_bandwidth
        )
        if self.bytes_rowgather:
            eff = (
                device.sparse_gather_efficiency
                + (device.mem_efficiency - device.sparse_gather_efficiency)
                * self.gather_density
            )
            time += self.bytes_rowgather / (device.dram_bandwidth * eff)
        return time

    def compute_time(self, device: DeviceSpec) -> float:
        cuda_flops = device.cuda_flops_fp16 if self.fp16 else device.cuda_flops_fp32
        return max(
            self.flops_cuda / cuda_flops,
            self.flops_tensor / device.tensor_flops_fp16,
            self.int_ops / device.cuda_int_ops,
        )

    def latency(self, device: DeviceSpec) -> float:
        """Roofline latency of one launch, in seconds."""
        return (
            device.kernel_launch_latency
            + max(self.memory_time(device), self.compute_time(device))
            + self.atomic_ops * device.atomic_add_latency
        )


def merge(name: str, *kernels: KernelCost) -> KernelCost:
    """Fuse kernels into one launch (kernel fusion, Section IV-B.4).

    Work adds; the fused kernel pays a single launch overhead.  Callers
    are responsible for removing any intermediate loads/stores the fusion
    eliminates *before* merging.
    """
    rowgather = sum(k.bytes_rowgather for k in kernels)
    if rowgather > 0:
        density = sum(
            k.bytes_rowgather * k.gather_density for k in kernels
        ) / rowgather
    else:
        density = 1.0
    return KernelCost(
        name=name,
        bytes_streamed=sum(k.bytes_streamed for k in kernels),
        bytes_gathered=sum(k.bytes_gathered for k in kernels),
        bytes_rowgather=rowgather,
        gather_density=density,
        flops_cuda=sum(k.flops_cuda for k in kernels),
        flops_tensor=sum(k.flops_tensor for k in kernels),
        int_ops=sum(k.int_ops for k in kernels),
        atomic_ops=sum(k.atomic_ops for k in kernels),
        fp16=all(k.fp16 for k in kernels),
    )


# ---------------------------------------------------------------------------
# GEMV family
# ---------------------------------------------------------------------------

def dense_gemv(name: str, nrows: int, ncols: int, dtype_bytes: int = 2) -> KernelCost:
    """Streaming dense matrix-vector product ``(nrows x ncols) @ (ncols,)``."""
    weight_bytes = nrows * ncols * dtype_bytes
    vector_bytes = (ncols + nrows) * dtype_bytes
    return KernelCost(
        name=name,
        bytes_streamed=weight_bytes + vector_bytes,
        flops_cuda=2.0 * nrows * ncols,
        fp16=dtype_bytes <= 2,
    )


def sparse_gemv(
    name: str,
    nrows: int,
    ncols: int,
    density: float,
    dtype_bytes: int = 2,
    atomic_output: bool = False,
) -> KernelCost:
    """Row-skipping GEMV: only ``density * nrows`` rows are loaded/computed.

    The skip-flag vector (one int per row) is read as well.  When
    ``atomic_output`` is set the kernel accumulates into the output with
    atomicAdd (the transposed-Wdown kernel of Section IV-B.4).

    Bandwidth model: the live rows are ``bytes_rowgather`` moving at the
    density-blended efficiency (see :meth:`KernelCost.memory_time`), which
    is monotone in density and reduces to :func:`dense_gemv`'s streaming
    bandwidth at ``density == 1``.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    live_rows = density * nrows
    weight_bytes = live_rows * ncols * dtype_bytes
    vector_bytes = (ncols + nrows) * dtype_bytes + nrows * 4  # io + skip flags
    return KernelCost(
        name=name,
        bytes_rowgather=weight_bytes,
        gather_density=density,
        bytes_streamed=vector_bytes,
        flops_cuda=2.0 * live_rows * ncols,
        atomic_ops=live_rows if atomic_output else 0.0,
        fp16=dtype_bytes <= 2,
    )


def prefill_gemm(
    name: str, nrows: int, ncols: int, n_tokens: int, dtype_bytes: int = 2
) -> KernelCost:
    """Batched prompt-phase GEMM: weights stream once, reused per token.

    Prefill is compute bound for long prompts, which is why SparseInfer
    leaves it dense (Section V-C) -- there is nothing memory-bound to
    save.
    """
    if n_tokens <= 0:
        raise ValueError(f"n_tokens must be positive, got {n_tokens}")
    weight_bytes = nrows * ncols * dtype_bytes
    act_bytes = n_tokens * (ncols + nrows) * dtype_bytes
    return KernelCost(
        name=name,
        bytes_streamed=weight_bytes + act_bytes,
        flops_cuda=2.0 * nrows * ncols * n_tokens,
        fp16=dtype_bytes <= 2,
    )


# ---------------------------------------------------------------------------
# SparseInfer kernels (Section IV-B)
# ---------------------------------------------------------------------------

def sign_pack_kernel(d: int, dtype_bytes: int = 2) -> KernelCost:
    """Pack the sign bits of the dynamic input vector X (Section IV-B.1)."""
    return KernelCost(
        name="sign_pack_x",
        bytes_streamed=d * dtype_bytes + d / 8.0,
        int_ops=float(d),
    )


def sparseinfer_predict_kernel(k: int, d: int) -> KernelCost:
    """XOR + popcount majority vote over packed signs (Listing 1).

    Reads ``k * d/8`` bytes of packed ``Wgate`` signs plus the packed input,
    performs ``k * d/32`` XORs and as many popcounts on the CUDA cores, and
    writes one skip flag per row.
    """
    words = k * d / 32.0
    return KernelCost(
        name="sparseinfer_predict",
        bytes_streamed=k * d / 8.0 + d / 8.0 + k * 4.0,
        int_ops=2.0 * words,  # XOR + popc per word
    )


def fused_sparse_mlp_kernel(
    d: int,
    k: int,
    gate_density: float,
    up_density: float,
    dtype_bytes: int = 2,
) -> KernelCost:
    """Steps 1-3 of the gated MLP fused into one kernel (Section IV-B.4).

    Memory access is limited to one load of X, the live rows of Wgate and
    Wup, and one write of h3; the h1/h2 intermediates stay in registers.
    """
    gate = sparse_gemv("gate", k, d, gate_density, dtype_bytes)
    up = sparse_gemv("up", k, d, up_density, dtype_bytes)
    fused = merge("fused_gate_up_mul", gate, up)
    # Fusion removes: one of the two X loads, the h1/h2 stores and loads.
    saved = d * dtype_bytes + 4 * k * dtype_bytes
    # Element-wise h3 = ReLU(h1) * h2 over live rows only.
    elementwise = max(gate_density, up_density) * k
    return KernelCost(
        name="fused_sparse_mlp",
        bytes_streamed=max(0.0, fused.bytes_streamed - saved) + elementwise * dtype_bytes,
        bytes_rowgather=fused.bytes_rowgather,
        gather_density=fused.gather_density,
        flops_cuda=fused.flops_cuda + elementwise,
        fp16=dtype_bytes <= 2,
    )


def elementwise_gate_kernel(k: int, density: float, dtype_bytes: int = 2) -> KernelCost:
    """Unfused step 3: h3 = ReLU(h1) * h2 (reads h1, h2; writes h3)."""
    live = density * k
    return KernelCost(
        name="gate_mul",
        bytes_streamed=3 * k * dtype_bytes,
        flops_cuda=2.0 * live,
        fp16=dtype_bytes <= 2,
    )


# ---------------------------------------------------------------------------
# DejaVu / PowerInfer predictor (Section II, V-A)
# ---------------------------------------------------------------------------

def dejavu_predict_kernel(d: int, rank: int, k: int, dtype_bytes: int = 2) -> KernelCost:
    """The trained two-FC-layer predictor of DejaVu, as used by PowerInfer.

    Computes ``x @ A (d x rank)`` then ``@ B (rank x k)`` in FP16 on the
    tensor cores; both weight matrices stream from DRAM every token.
    """
    weight_bytes = (d * rank + rank * k) * dtype_bytes
    vector_bytes = (d + rank + k) * dtype_bytes
    return KernelCost(
        name="dejavu_predict",
        bytes_streamed=weight_bytes + vector_bytes,
        flops_tensor=2.0 * (d * rank + rank * k),
    )


# ---------------------------------------------------------------------------
# Attention & misc per-layer kernels
# ---------------------------------------------------------------------------

def attention_kernels(
    d: int,
    n_heads: int,
    seq_len: int,
    dtype_bytes: int = 2,
) -> list[KernelCost]:
    """Dense attention for one decode step: QKV, RoPE, scores, output.

    Neither engine sparsifies attention (SparseInfer targets the MLP), so
    this cost is common to all compared configurations.
    """
    head_dim = d // n_heads
    kernels = [
        dense_gemv("wq", d, d, dtype_bytes),
        dense_gemv("wk", d, d, dtype_bytes),
        dense_gemv("wv", d, d, dtype_bytes),
        KernelCost(
            name="rope",
            bytes_streamed=2 * d * dtype_bytes * 2,
            flops_cuda=4.0 * d,
            fp16=dtype_bytes <= 2,
        ),
        # Score + weighted-sum read the whole KV cache for this layer.
        KernelCost(
            name="attn_scores_softmax_wsum",
            bytes_streamed=2 * seq_len * d * dtype_bytes
            + n_heads * seq_len * 4.0 * 2,
            flops_cuda=4.0 * seq_len * d + 10.0 * n_heads * seq_len,
            fp16=dtype_bytes <= 2,
        ),
        dense_gemv("wo", d, d, dtype_bytes),
    ]
    del head_dim
    return kernels


def rmsnorm_kernel(d: int, dtype_bytes: int = 2) -> KernelCost:
    return KernelCost(
        name="rmsnorm",
        bytes_streamed=3 * d * dtype_bytes,
        flops_cuda=4.0 * d,
        fp16=dtype_bytes <= 2,
    )


def residual_add_kernel(d: int, dtype_bytes: int = 2) -> KernelCost:
    return KernelCost(
        name="residual_add",
        bytes_streamed=3 * d * dtype_bytes,
        flops_cuda=float(d),
        fp16=dtype_bytes <= 2,
    )


def lm_head_kernel(d: int, vocab: int, dtype_bytes: int = 2) -> KernelCost:
    return dense_gemv("lm_head", vocab, d, dtype_bytes)

"""Timeline simulator: sequences and concurrent groups of kernels.

Models a CUDA stream executing kernels back to back, with optional
Concurrent Kernel Execution (CKE) groups -- the paper notes steps 1 and 2
of the MLP *can* run concurrently, but SparseInfer runs them sequentially
to harvest actual sparsity.  For memory-bound kernels CKE buys little
because the DRAM bandwidth is shared; the simulator models a CKE group as

    time = max(sum of memory times, max of compute times) + one launch
           overhead per kernel

i.e. bandwidth serialises, compute overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from .device import DeviceSpec
from .kernels import KernelCost


@dataclass(frozen=True)
class ConcurrentGroup:
    """Kernels launched on separate streams that may overlap (CKE)."""

    kernels: tuple

    def __post_init__(self):
        if not self.kernels:
            raise ValueError("ConcurrentGroup needs at least one kernel")

    def latency(self, device: DeviceSpec) -> float:
        mem = sum(k.memory_time(device) for k in self.kernels)
        comp = max(k.compute_time(device) for k in self.kernels)
        launches = len(self.kernels) * device.kernel_launch_latency
        atomics = sum(k.atomic_ops for k in self.kernels) * device.atomic_add_latency
        return launches + max(mem, comp) + atomics

    @property
    def total_bytes(self) -> float:
        return sum(k.total_bytes for k in self.kernels)


TimelineItem = Union[KernelCost, ConcurrentGroup]


@dataclass
class Timeline:
    """An ordered stream of kernels / CKE groups with latency accounting."""

    items: list = field(default_factory=list)
    fixed_overhead: float = 0.0   # host-side per-invocation cost (graph eval)

    def add(self, item: TimelineItem) -> "Timeline":
        self.items.append(item)
        return self

    def extend(self, items: Iterable[TimelineItem]) -> "Timeline":
        self.items.extend(items)
        return self

    def concurrent(self, kernels: Sequence[KernelCost]) -> "Timeline":
        self.items.append(ConcurrentGroup(kernels=tuple(kernels)))
        return self

    @property
    def n_launches(self) -> int:
        total = 0
        for item in self.items:
            total += len(item.kernels) if isinstance(item, ConcurrentGroup) else 1
        return total

    @property
    def total_bytes(self) -> float:
        return sum(item.total_bytes for item in self.items)

    def latency(self, device: DeviceSpec) -> float:
        """End-to-end latency in seconds."""
        return self.fixed_overhead + sum(
            item.latency(device) for item in self.items
        )

    def breakdown(self, device: DeviceSpec) -> dict:
        """Per-kernel-name latency totals (seconds), for reporting."""
        out: dict = {}
        if self.fixed_overhead:
            out["host_overhead"] = self.fixed_overhead
        for item in self.items:
            if isinstance(item, ConcurrentGroup):
                name = "+".join(k.name for k in item.kernels)
                out[name] = out.get(name, 0.0) + item.latency(device)
            else:
                out[item.name] = out.get(item.name, 0.0) + item.latency(device)
        return out

"""Deterministic seeded load generation for the serving stack.

Every throughput/latency number the repo reported before PR 10 came
from a fixed request list submitted all at once -- a drained queue,
not traffic.  This module supplies the missing arrival dimension as a
discrete-event generator: an :class:`ArrivalProcess` turns a seeded
``numpy`` Generator into a monotone arrival-time trace, a request
factory turns the same seed's second stream into request shapes, and
:func:`run_trace` replays the timed trace against a
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` by
interleaving ``submit()`` with ``step()`` ticks on a virtual clock.

Determinism is the design constraint, not an afterthought: the only
randomness is the explicit :class:`numpy.random.Generator` pair spawned
from the caller's seed via :class:`numpy.random.SeedSequence` (the
``rng-purity`` analysis rule enforces exactly this), arrivals and
request shapes draw from *independent* child streams (changing the
shape sampler cannot perturb arrival times, and vice versa), and the
virtual clock is the scheduler's own tick counter -- so one
``(process, factory, seed)`` triple names one bit-identical workload
on any machine, which is what lets the overload benchmark assert
*strict* goodput orderings rather than statistical ones.

Three arrival processes cover the traffic shapes serving papers
evaluate on:

* :class:`PoissonProcess` -- memoryless arrivals at a constant rate;
  exponential inter-arrival gaps, the M/\\*/\\* baseline.
* :class:`OnOffProcess` -- bursty Markov-modulated traffic: the source
  alternates exponential ON dwells (arrivals at ``burst_rate``) with
  exponential OFF dwells (silence), so the same mean rate arrives in
  clumps that stress admission and preemption.
* :class:`DiurnalProcess` -- a sinusoidal rate ramp between a low and
  high rate over a fixed period, the slow day/night swing that drives
  a scheduler into and out of overload; sampled by thinning a
  homogeneous process at the peak rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from .request import Request


@dataclass(frozen=True)
class TimedRequest:
    """One trace entry: a request and its virtual arrival time."""

    time: float
    request: Request


class PoissonProcess:
    """Memoryless arrivals at a constant ``rate`` (per virtual second)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` arrival times: cumulative exponential gaps, one draw."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return np.cumsum(gaps)


class OnOffProcess:
    """Bursty on/off (Markov-modulated Poisson) arrivals.

    The source alternates ON dwells (mean ``mean_on``, arrivals at
    ``burst_rate``) with OFF dwells (mean ``mean_off``, silence), both
    exponentially distributed -- a 2-state MMPP.  The long-run mean
    rate is ``burst_rate * mean_on / (mean_on + mean_off)``; the same
    offered load as a Poisson source arrives in clumps separated by
    idle gaps, which is the shape that exposes admission-queue and
    preemption behaviour a constant rate never would.

    Within one ON dwell of length ``d`` the arrival count is drawn as
    ``Poisson(burst_rate * d)`` and the arrival instants as sorted
    uniforms over the dwell -- the order-statistics characterisation of
    a conditioned Poisson process, vectorised per segment instead of
    gap-by-gap.
    """

    def __init__(self, burst_rate: float, mean_on: float, mean_off: float):
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be > 0, got {burst_rate}")
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError(
                f"mean_on and mean_off must be > 0, got "
                f"{mean_on} and {mean_off}"
            )
        self.burst_rate = float(burst_rate)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)

    @property
    def mean_rate(self) -> float:
        """Long-run arrivals per virtual second."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.burst_rate * duty

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        times: List[np.ndarray] = []
        collected = 0
        t = 0.0
        while collected < n:
            on = rng.exponential(self.mean_on)
            k = int(rng.poisson(self.burst_rate * on))
            if k:
                offsets = np.sort(rng.uniform(0.0, on, size=k))
                times.append(t + offsets)
                collected += k
            t += on + rng.exponential(self.mean_off)
        if not times:
            return np.empty(0)
        return np.concatenate(times)[:n]


class DiurnalProcess:
    """Sinusoidal rate ramp between ``low_rate`` and ``high_rate``.

    The instantaneous rate is ``mid - amp * cos(2*pi*t / period)`` --
    it starts at the trough (``low_rate`` at ``t=0``), peaks at
    ``high_rate`` half a period in, and returns: one synthetic "day".
    Sampled by thinning: candidate arrivals are drawn homogeneously at
    ``high_rate`` and each is kept with probability ``rate(t) /
    high_rate``, the standard exact sampler for an inhomogeneous
    Poisson process.  Candidate gaps and keep-draws are generated in
    vectorised batches.
    """

    def __init__(self, low_rate: float, high_rate: float, period: float):
        if low_rate <= 0:
            raise ValueError(f"low_rate must be > 0, got {low_rate}")
        if high_rate < low_rate:
            raise ValueError(
                f"high_rate must be >= low_rate, got {high_rate} < {low_rate}"
            )
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.low_rate = float(low_rate)
        self.high_rate = float(high_rate)
        self.period = float(period)

    def rate_at(self, t) -> np.ndarray:
        """Instantaneous arrival rate at virtual time ``t``."""
        mid = 0.5 * (self.high_rate + self.low_rate)
        amp = 0.5 * (self.high_rate - self.low_rate)
        return mid - amp * np.cos(2.0 * np.pi * np.asarray(t) / self.period)

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        times: List[np.ndarray] = []
        collected = 0
        t = 0.0
        batch = max(2 * n, 64)
        while collected < n:
            gaps = rng.exponential(1.0 / self.high_rate, size=batch)
            cand = t + np.cumsum(gaps)
            keep = rng.random(size=batch) * self.high_rate < self.rate_at(cand)
            kept = cand[keep]
            times.append(kept)
            collected += kept.size
            t = float(cand[-1])
        return np.concatenate(times)[:n]


class LoadGenerator:
    """Seeded (process, factory) pair producing bit-identical traces.

    ``request_factory(rng, request_id) -> Request`` draws one request
    shape from the supplied Generator -- arrival times and request
    shapes come from *independent* streams spawned off ``seed`` via
    :class:`numpy.random.SeedSequence`, so the two dimensions of the
    workload can be varied without perturbing each other.  The same
    ``(process, factory, seed)`` triple always yields the same
    :meth:`trace`, which is what the overload benchmark's strict
    (non-statistical) goodput gates rely on.
    """

    def __init__(
        self,
        process,
        request_factory: Callable[[np.random.Generator, int], Request],
        seed: int = 0,
    ):
        if not hasattr(process, "arrival_times"):
            raise ValueError(
                f"process must expose arrival_times(n, rng), "
                f"got {type(process).__name__}"
            )
        if not callable(request_factory):
            raise ValueError(
                f"request_factory must be callable, "
                f"got {type(request_factory).__name__}"
            )
        self.process = process
        self.request_factory = request_factory
        self.seed = int(seed)

    def trace(self, n_requests: int, start_id: int = 0) -> List[TimedRequest]:
        """``n_requests`` timed requests, sorted by arrival time."""
        if n_requests < 0:
            raise ValueError(f"n_requests must be >= 0, got {n_requests}")
        arrival_seq, shape_seq = np.random.SeedSequence(self.seed).spawn(2)
        arrival_rng = np.random.default_rng(arrival_seq)
        shape_rng = np.random.default_rng(shape_seq)
        times = self.process.arrival_times(n_requests, arrival_rng)
        entries = [
            TimedRequest(
                time=float(times[i]),
                request=self.request_factory(shape_rng, start_id + i),
            )
            for i in range(n_requests)
        ]
        entries.sort(key=lambda e: e.time)
        return entries


def run_trace(
    scheduler,
    trace: List[TimedRequest],
    ticks_per_second: float = 1.0,
    max_steps: int = 1_000_000,
):
    """Replay a timed trace against a scheduler on its virtual clock.

    The virtual clock is the scheduler's own tick counter scaled by
    ``ticks_per_second``: before each tick every trace entry whose
    arrival time has passed (``time <= step_count / ticks_per_second``)
    is submitted, then the scheduler steps -- the discrete-event loop
    that turns an arrival trace into interleaved ``submit()`` /
    ``step()`` calls.  A request arriving between ticks is therefore
    submitted at the start of the next tick, exactly once, in trace
    order.  Runs until the trace is exhausted and the scheduler is
    idle; returns the scheduler's :class:`~repro.serving.scheduler.
    ServeReport`.
    """
    if ticks_per_second <= 0:
        raise ValueError(
            f"ticks_per_second must be > 0, got {ticks_per_second}"
        )
    entries = sorted(trace, key=lambda e: e.time)
    next_i = 0
    steps = 0
    while next_i < len(entries) or not scheduler.idle:
        now = scheduler.step_count / ticks_per_second
        while next_i < len(entries) and entries[next_i].time <= now:
            scheduler.submit(entries[next_i].request)
            next_i += 1
        scheduler.step()
        steps += 1
        if steps >= max_steps and (next_i < len(entries) or not scheduler.idle):
            raise RuntimeError(
                f"trace did not drain within {max_steps} steps "
                f"({len(entries) - next_i} arrivals still pending)"
            )
    return scheduler.report

"""The batched decode engine: per-slot prefill + batched sparse decode.

Mirrors :class:`repro.model.inference.InferenceModel` over a pool of KV
slots.  Prefill runs per sequence with the dense executor (sparsity is a
decode-phase optimisation, paper Section V-C); decode steps run all
active sequences at once -- batched RMSNorm/QKV/output projections and
the batch-aware sparse MLP, with only the cached-attention inner step
looping per sequence (each slot has its own length and positions).

Every per-sequence op funnels through the same helpers as the
single-sequence engine (:func:`repro.model.inference.attend_single`,
:meth:`repro.core.sparse_mlp.SparseInferMLP.run_with_skip`), and this
BLAS computes ``x @ W`` and ``(x[None] @ W)[0]`` identically, so a batch
of one is bit-identical to :func:`repro.core.engine.build_engine` output.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.engine import SparseInferSettings
from ..core.predictor import SparseInferPredictor
from ..model.inference import attend_single, forward_token_single
from ..model.kvcache import BatchedKVCache, KVSlot
from ..model.paged_kvcache import DEFAULT_PAGE_SIZE, PagedKVCache
from ..model.mlp import DenseMLP, MLPExecutor
from ..model.norm import rmsnorm
from ..model.rope import rope_tables
from ..model.weights import ModelWeights
from .batch_mlp import BatchedSparseInferMLP


class BatchedEngine:
    """Multi-sequence SparseInfer decoder over pooled KV slots.

    Parameters
    ----------
    weights:
        Model parameters in inference layout.
    settings:
        The same knobs as :func:`repro.core.engine.build_engine`; the
        alpha schedule is applied through the shared predictor.
    predictor:
        Reuse an already-packed predictor (packing is the only expensive
        offline step); otherwise packed from ``weights``.
    max_batch_size:
        Number of KV slots, i.e. the concurrent-sequence ceiling.
    max_seq_len:
        Per-slot capacity; defaults to the model's ``max_seq_len``.
    paged:
        Back the slots with a shared page arena
        (:class:`~repro.model.paged_kvcache.PagedKVCache`) instead of a
        fixed ``max_seq_len`` array per slot; short requests then hold
        only the pages they touch, so more sequences fit one memory
        budget.  Decode output is bit-identical either way.
    page_size / n_pages:
        Paged-cache geometry: positions per page, and the total page
        budget (default: the fixed cache's worst case, so ``paged=True``
        alone never admits less).
    """

    def __init__(
        self,
        weights: ModelWeights,
        settings: Optional[SparseInferSettings] = None,
        predictor: Optional[SparseInferPredictor] = None,
        max_batch_size: int = 8,
        max_seq_len: int = 0,
        paged: bool = False,
        page_size: int = DEFAULT_PAGE_SIZE,
        n_pages: int = 0,
    ):
        weights.validate()
        self.weights = weights
        self.config = weights.config
        self.settings = settings or SparseInferSettings()
        schedule = self.settings.schedule(self.config.n_layers)
        if predictor is None:
            predictor = SparseInferPredictor.from_gate_weights(
                weights.gate_matrices(), schedule
            )
        else:
            predictor = predictor.with_schedule(schedule)
        self.sparse = BatchedSparseInferMLP(
            weights=weights,
            predictor=predictor,
            use_actual_sparsity=self.settings.use_actual_sparsity,
        )
        self.prefill_mlp: MLPExecutor = (
            self.sparse.single if self.settings.sparse_prefill
            else DenseMLP(weights)
        )
        self.max_batch_size = max_batch_size
        self.paged = paged
        if paged:
            self.cache = PagedKVCache(
                self.config, max_batch_size, max_seq_len,
                page_size=page_size, n_pages=n_pages,
            )
        else:
            self.cache = BatchedKVCache(
                self.config, max_batch_size, max_seq_len
            )

    # -- slot management ---------------------------------------------------

    @property
    def n_free_slots(self) -> int:
        return self.cache.n_free

    def can_admit(self, n_positions: int) -> bool:
        """Whether a worst-case ``n_positions`` request fits right now."""
        return self.cache.can_admit(n_positions)

    def allocate_slot(self, max_positions: int = 0) -> KVSlot:
        """Claim a slot; paged caches reserve ``max_positions`` of pages."""
        return self.cache.allocate(max_positions)

    def release_slot(self, slot: KVSlot) -> None:
        self.cache.release(slot)

    # -- forward passes ----------------------------------------------------

    def _forward_single(
        self, token_id: int, slot: KVSlot, mlp: MLPExecutor
    ) -> np.ndarray:
        """One token through one sequence -- the InferenceModel op sequence."""
        cfg = self.config
        position = slot.length
        rope = rope_tables(np.array([position]), cfg.head_dim, cfg.rope_theta)
        logits = forward_token_single(
            self.weights, token_id, position, slot, mlp, rope=rope,
        )
        slot.advance()
        return logits

    def prefill(self, slot: KVSlot, prompt_ids: Sequence[int]) -> np.ndarray:
        """Run a prompt into a slot; returns last-position logits."""
        # len(), not truthiness: a numpy-array prompt satisfies the
        # Sequence[int] annotation but raises on bool().
        if len(prompt_ids) == 0:
            raise ValueError("prefill needs at least one token")
        logits = None
        for tok in prompt_ids:
            logits = self._forward_single(int(tok), slot, self.prefill_mlp)
        return logits

    def decode_step(
        self, slots: Sequence[KVSlot], token_ids: Sequence[int]
    ) -> np.ndarray:
        """One batched decode step; returns ``(B, vocab)`` logits.

        ``token_ids[i]`` is fed to ``slots[i]`` at its current length.
        """
        if len(slots) != len(token_ids):
            raise ValueError("slots and token_ids must align")
        if not slots:
            raise ValueError("decode_step needs at least one sequence")
        if len(slots) == 1:
            logits = self._forward_single(
                int(token_ids[0]), slots[0], self._decode_mlp_single
            )
            return logits[None, :]

        cfg = self.config
        positions = [slot.length for slot in slots]
        ropes = [
            rope_tables(np.array([p]), cfg.head_dim, cfg.rope_theta)
            for p in positions
        ]
        x = self.weights.tok_embed[list(token_ids)].astype(np.float32)
        for layer in range(cfg.n_layers):
            lw = self.weights.layers[layer]
            attn_in = rmsnorm(x, lw.attn_norm, cfg.norm_eps)
            q = attn_in @ lw.wq
            k = attn_in @ lw.wk
            v = attn_in @ lw.wv
            ctx = np.empty_like(x)
            for i, slot in enumerate(slots):
                ctx[i] = attend_single(
                    cfg, q[i], k[i], v[i], positions[i], slot, layer,
                    rope=ropes[i],
                )
            x = x + ctx @ lw.wo
            mlp_in = rmsnorm(x, lw.mlp_norm, cfg.norm_eps)
            x = x + self.sparse.run_batch(layer, mlp_in)
        for slot in slots:
            slot.advance()
        final = rmsnorm(x, self.weights.final_norm, cfg.norm_eps)
        return final @ self.weights.lm_head

    @property
    def _decode_mlp_single(self) -> MLPExecutor:
        """Single-sequence view of the batched sparse executor."""
        return _SingleView(self.sparse)


class _SingleView:
    """Adapts :class:`BatchedSparseInferMLP` to the 1-D executor protocol."""

    def __init__(self, batched: BatchedSparseInferMLP):
        self._batched = batched

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        return self._batched.run_batch(layer, x[None, :])[0]

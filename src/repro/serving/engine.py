"""The batched decode engine: per-slot prefill + batched sparse decode.

Mirrors :class:`repro.model.inference.InferenceModel` over a pool of KV
slots.  Prefill runs per sequence with the dense executor (sparsity is a
decode-phase optimisation, paper Section V-C); decode steps run all
active sequences at once -- batched RMSNorm/QKV/output projections and
the batch-aware sparse MLP, with only the cached-attention inner step
looping per sequence (each slot has its own length and positions).

Every per-sequence op funnels through the same helpers as the
single-sequence engine (:func:`repro.model.inference.attend_single`,
:meth:`repro.core.sparse_mlp.SparseInferMLP.run_with_skip`), and this
BLAS computes ``x @ W`` and ``(x[None] @ W)[0]`` identically, so a batch
of one is bit-identical to :func:`repro.core.engine.build_engine` output.

With ``paged=True`` and ``prefix_sharing=True`` the engine additionally
keeps a :class:`PrefixIndex` over resident sequences' prompts: a new
request whose prompt shares a prefix with a resident one can be admitted
by **forking** the donor's KV pages
(:meth:`repro.model.paged_kvcache.PagedKVCache.fork`) instead of
re-running prefill over the shared positions.  Causal attention makes the
shared positions' K/V a pure function of the shared tokens, so the forked
request's outputs stay bit-identical to an unshared admission -- prefix
sharing changes *where* K/V comes from and *how much* prefill runs, never
what is decoded.

``cache_pages > 0`` extends sharing across non-overlapping lifetimes: a
retiring sequence's prompt-prefix pages are parked in a
:class:`repro.model.paged_kvcache.PrefixCache` (LRU, same chained page
hash as the :class:`PrefixIndex`) instead of freed, and a later request
can *revive* them -- re-pin the pages into its slot and prefill only the
suffix.  Admission lookup order is resident-donor fork -> prefix-cache
revive -> cold prefill.

Equivalence guarantees (unchanged by every knob above): a batch of one
decodes **bit-identical** to :func:`repro.core.engine.build_engine`, and
batch > 1 / chunked prefill are **token-identical** across the
fixed/paged/prefix-shared/prefix-cached cache matrix.  See
``docs/serving.md`` for the architecture walkthrough, the full
``build_batched_engine`` knob table, and the ``ServeReport`` telemetry
glossary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.alpha import AlphaSchedule
from ..core.engine import SparseInferSettings
from ..core.predictor import SparseInferPredictor
from ..model.batch_attention import (
    DEFAULT_BUCKET_MIN_FILL,
    AttentionTelemetry,
    BatchedAttention,
)
from ..model.inference import attend_single, forward_token_single
from ..model.kvcache import BatchedKVCache, KVSlot
from ..model.paged_kvcache import (
    DEFAULT_PAGE_SIZE,
    PagedKVCache,
    chained_prefix_keys,
)
from ..model.mlp import DenseMLP, MLPExecutor
from ..model.norm import rmsnorm
from ..model.rope import apply_rope, rope_for_position, rope_tables
from ..model.sampler import BatchedSampler, SamplerConfig
from ..model.weights import ModelWeights
from .batch_mlp import BatchedSparseInferMLP
from .speculative import SpecConfig


class PrefixIndex:
    """Hash index from page-aligned prompt prefixes to resident slots.

    For every resident sequence the index stores one bucket per
    page-aligned prefix of its prompt (``prompt[:k * page_size]``),
    keyed by a **chained** per-page hash -- ``hash((prev_key,
    page_tokens))``, vLLM block-hash style -- so all of a prompt's
    bucket keys are computed in one O(len) pass rather than re-hashing
    each prefix slice from scratch.  Lookup walks a new prompt's aligned
    prefixes longest-first, verifies token equality on a hit (hashes can
    collide), and then extends the match token by token past the last
    aligned boundary -- the eager partial-page copy in
    :meth:`~repro.model.paged_kvcache.PagedKVCache.fork` makes
    non-aligned share lengths safe.

    Prompts shorter than one page are never matched: there is no aligned
    prefix to bucket, and sub-page sharing would save neither a page nor
    enough prefill to matter.
    """

    def __init__(self, page_size: int):
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.page_size = page_size
        self._prompts: dict = {}    # slot index -> prompt tuple
        self._buckets: dict = {}    # hash(aligned prefix) -> set of slots

    def __len__(self) -> int:
        return len(self._prompts)

    def _aligned_keys(self, prompt: tuple) -> list:
        """Chained bucket keys, ``keys[i]`` covering ``prompt[:(i+1)*ps]``.

        The same key scheme indexes the cross-request
        :class:`~repro.model.paged_kvcache.PrefixCache`, so a prefix
        retired from this index is findable there under identical keys.
        """
        return chained_prefix_keys(prompt, self.page_size)

    def prompt_of(self, slot_index: int):
        """The registered prompt tuple of ``slot_index``, or None."""
        return self._prompts.get(slot_index)

    def insert(self, slot_index: int, prompt_ids) -> None:
        if slot_index in self._prompts:
            raise ValueError(f"slot {slot_index} already indexed")
        prompt = tuple(int(t) for t in prompt_ids)
        self._prompts[slot_index] = prompt
        for key in self._aligned_keys(prompt):
            self._buckets.setdefault(key, set()).add(slot_index)

    def remove(self, slot_index: int) -> None:
        prompt = self._prompts.pop(slot_index, None)
        if prompt is None:
            return
        for key in self._aligned_keys(prompt):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(slot_index)
                if not bucket:
                    del self._buckets[key]

    def lookup(self, prompt_ids) -> tuple:
        """``(slot_index, shared_len)`` of the longest shareable prefix.

        ``shared_len`` is capped at ``len(prompt) - 1``: at least one
        prompt token must be prefilled so the admission has last-position
        logits to sample from.  Returns ``(None, 0)`` when no resident
        prompt shares at least one full page.
        """
        prompt = tuple(int(t) for t in prompt_ids)
        cap = len(prompt) - 1
        keys = self._aligned_keys(prompt)[:cap // self.page_size]
        for i in range(len(keys) - 1, -1, -1):
            end = (i + 1) * self.page_size
            bucket = self._buckets.get(keys[i])
            if not bucket:
                continue
            best_slot, best_shared = None, 0
            for slot_index in bucket:
                donor = self._prompts[slot_index]
                if donor[:end] != prompt[:end]:     # hash-collision guard
                    continue
                shared = end
                limit = min(cap, len(donor))
                while shared < limit and donor[shared] == prompt[shared]:
                    shared += 1
                if shared > best_shared:
                    best_slot, best_shared = slot_index, shared
            if best_slot is not None:
                return best_slot, best_shared
        return None, 0


class BatchedEngine:
    """Multi-sequence SparseInfer decoder over pooled KV slots.

    Parameters
    ----------
    weights:
        Model parameters in inference layout.
    settings:
        The same knobs as :func:`repro.core.engine.build_engine`; the
        alpha schedule is applied through the shared predictor.
    predictor:
        Reuse an already-packed predictor (packing is the only expensive
        offline step); otherwise packed from ``weights``.
    max_batch_size:
        Number of KV slots, i.e. the concurrent-sequence ceiling.
    max_seq_len:
        Per-slot capacity; defaults to the model's ``max_seq_len``.
    paged:
        Back the slots with a shared page arena
        (:class:`~repro.model.paged_kvcache.PagedKVCache`) instead of a
        fixed ``max_seq_len`` array per slot; short requests then hold
        only the pages they touch, so more sequences fit one memory
        budget.  Decode output is bit-identical either way.
    page_size / n_pages:
        Paged-cache geometry: positions per page, and the total page
        budget (default: the fixed cache's worst case, so ``paged=True``
        alone never admits less).
    prefix_sharing:
        Keep a :class:`PrefixIndex` over resident prompts and allow
        admissions to fork a resident sequence's KV pages
        (copy-on-write) instead of re-prefilling a shared prefix.
        Requires ``paged=True``.
    cache_pages:
        When > 0, keep up to this many retired prompt-prefix pages
        alive in an LRU :class:`~repro.model.paged_kvcache.PrefixCache`
        so bursty same-prefix requests whose lifetimes never overlap
        can still share: admission *revives* cached pages (re-pins them
        into the new slot) and prefills only the suffix.  The budget is
        carved out of ``n_pages`` -- cached pages stay reclaimable, the
        allocator evicts LRU entries on demand, so reservations and
        admission guarantees are unchanged.  Requires
        ``prefix_sharing=True``; 0 (the default) is bit-identical to no
        cache.
    batched_attention:
        Compute decode attention for the whole batch at once
        (:class:`~repro.model.batch_attention.BatchedAttention`: padded
        K/V stack + length mask, length-bucketed) instead of looping
        :func:`attend_single` per sequence.  Token-identical at any
        batch size; batch = 1 always takes the scalar path, which stays
        bit-identical to :func:`repro.core.engine.build_engine`.
    attn_bucket_min_fill:
        Bucketing knob for batched attention: sequences join a length
        bucket while their length is at least this fraction of the
        bucket maximum (0 = one bucket, 1 = equal lengths only).
    prefill_chunk:
        When > 0, run prompt prefill through each layer as causal
        ``(chunk, d)`` passes (one GEMM per projection) instead of
        token-by-token scalar passes -- admission cost drops from
        ``T`` sequential token steps to ``ceil(T / chunk)`` matrix
        steps.  0 keeps the scalar loop (bit-identical to the
        single-sequence engine); chunked prefill is token-identical.
    sampling:
        Default :class:`~repro.model.sampler.SamplerConfig` for
        requests that do not carry their own ``Request.sampling``.
        ``None`` (the default) means greedy argmax -- exactly the
        pre-sampling scheduler behaviour.  The engine owns one
        :class:`~repro.model.sampler.BatchedSampler` either way; it
        consumes the stacked decode logits in one vectorised pass and
        draws stochastic rows from per-request RNG streams.
    speculation:
        Default :class:`~repro.serving.speculative.SpecConfig` for
        speculative self-drafting.  The engine itself only stores it
        (and sizes nothing differently); the scheduler reads it as the
        default when its own ``speculation`` argument is None.  Draft
        and verify executors are built lazily per draft alpha
        (:meth:`draft_step` / :meth:`verify_chunk`), so an engine built
        without this knob still serves a scheduler-side ``SpecConfig``.
        ``None`` (the default) keeps the engine bit-identical to
        pre-speculation builds.
    """

    def __init__(
        self,
        weights: ModelWeights,
        settings: Optional[SparseInferSettings] = None,
        predictor: Optional[SparseInferPredictor] = None,
        max_batch_size: int = 8,
        max_seq_len: int = 0,
        paged: bool = False,
        page_size: int = DEFAULT_PAGE_SIZE,
        n_pages: int = 0,
        prefix_sharing: bool = False,
        cache_pages: int = 0,
        batched_attention: bool = False,
        attn_bucket_min_fill: float = DEFAULT_BUCKET_MIN_FILL,
        prefill_chunk: int = 0,
        sampling: Optional[SamplerConfig] = None,
        speculation: Optional[SpecConfig] = None,
    ):
        weights.validate()
        self.weights = weights
        self.config = weights.config
        self.settings = settings or SparseInferSettings()
        schedule = self.settings.schedule(self.config.n_layers)
        if predictor is None:
            predictor = SparseInferPredictor.from_gate_weights(
                weights.gate_matrices(), schedule
            )
        else:
            predictor = predictor.with_schedule(schedule)
        self.sparse = BatchedSparseInferMLP(
            weights=weights,
            predictor=predictor,
            use_actual_sparsity=self.settings.use_actual_sparsity,
        )
        self.prefill_mlp: MLPExecutor = (
            self.sparse.single if self.settings.sparse_prefill
            else DenseMLP(weights)
        )
        self.max_batch_size = max_batch_size
        self.paged = paged
        if prefix_sharing and not paged:
            raise ValueError("prefix_sharing requires paged=True")
        if cache_pages and not prefix_sharing:
            raise ValueError("cache_pages requires prefix_sharing=True")
        self.prefix_sharing = prefix_sharing
        self.cache_pages = cache_pages
        if paged:
            self.cache = PagedKVCache(
                self.config, max_batch_size, max_seq_len,
                page_size=page_size, n_pages=n_pages,
                cache_pages=cache_pages,
            )
        else:
            self.cache = BatchedKVCache(
                self.config, max_batch_size, max_seq_len
            )
        self._prefix_index = (
            PrefixIndex(self.cache.page_size) if prefix_sharing else None
        )
        self._resident: dict = {}          # slot index -> live slot handle
        if prefill_chunk < 0:
            raise ValueError(
                f"prefill_chunk must be >= 0, got {prefill_chunk}"
            )
        self.prefill_chunk = prefill_chunk
        self.sampling = sampling if sampling is not None else SamplerConfig()
        self.sampler = BatchedSampler(self.sampling)
        self.speculation = speculation
        # Speculation executors, built on demand: one sparse draft
        # executor per aggressive alpha, one verify executor at the
        # serving alpha.  Separate instances keep ``self.sparse.stats``
        # (the skip-intersection telemetry the scheduler reports)
        # strictly about committed decode steps.
        self._draft_mlps: dict = {}
        self._verify_view = None
        self.batched_attention = batched_attention
        self.attention = BatchedAttention(
            self.config, bucket_min_fill=attn_bucket_min_fill
        )

    @property
    def attn_telemetry(self) -> AttentionTelemetry:
        """Padding-waste / bucketing counters of the batched-attention path."""
        return self.attention.telemetry

    # -- slot management ---------------------------------------------------

    @property
    def n_free_slots(self) -> int:
        return self.cache.n_free

    def can_admit(self, n_positions: int) -> bool:
        """Whether a worst-case ``n_positions`` request fits right now."""
        return self.cache.can_admit(n_positions)

    def allocate_slot(self, max_positions: int = 0) -> KVSlot:
        """Claim a slot; paged caches reserve ``max_positions`` of pages."""
        return self.cache.allocate(max_positions)

    def release_slot(self, slot: KVSlot, parked_ids=None) -> None:
        """Retire a sequence; with a prefix cache, park its prefix pages.

        The retiring sequence's prompt (as registered by
        :meth:`register_prefix`) keys the parked pages, so an identical
        future prefix can revive them.  Unregistered slots -- or engines
        without ``cache_pages`` -- release exactly as before.

        ``parked_ids`` overrides the registered prompt as the parking
        key: the preempting scheduler passes the *prefilled prompt
        prefix* here (possibly shorter than the prompt when a sequence
        is evicted mid-prefill, before :meth:`register_prefix` ran), so
        the victim's restoration is usually a revive rather than a cold
        prefill.  Only prefill-path positions may be parked -- decode
        positions go through the sparse executor, so their K/V is not
        the pure function of the tokens that cache revival assumes.
        """
        prompt = None
        if self._prefix_index is not None:
            prompt = self._prefix_index.prompt_of(slot.index)
            self._prefix_index.remove(slot.index)
            self._resident.pop(slot.index, None)
        if parked_ids is not None:
            prompt = parked_ids
        if prompt is not None and self.prefix_cache is not None:
            self.cache.release(slot, prompt_ids=prompt)
        else:
            self.cache.release(slot)

    # -- prefix sharing ----------------------------------------------------

    def find_prefix_donor(self, prompt_ids) -> tuple:
        """``(donor_slot, shared_positions)`` or ``(None, 0)``.

        The donor is the resident sequence whose registered prompt
        shares the longest prefix with ``prompt_ids`` (at least one full
        page, at most ``len(prompt_ids) - 1`` so one token is left to
        prefill for last-position logits).
        """
        if self._prefix_index is None or len(prompt_ids) < 2:
            return None, 0
        slot_index, shared = self._prefix_index.lookup(prompt_ids)
        if slot_index is None:
            return None, 0
        return self._resident[slot_index], shared

    def can_fork(self, donor: KVSlot, shared_positions: int,
                 max_positions: int = 0) -> bool:
        """Whether forking ``donor`` at ``shared_positions`` fits now."""
        if not self.prefix_sharing:
            return False
        return self.cache.can_fork(donor, shared_positions, max_positions)

    def fork_slot(self, donor: KVSlot, shared_positions: int,
                  max_positions: int = 0) -> KVSlot:
        """Claim a slot whose first ``shared_positions`` alias the donor.

        The new slot starts at ``length == shared_positions``; callers
        prefill only the prompt *suffix* (positions continue where the
        shared prefix ends).  ``max_positions`` reserves only the
        unshared worst case.
        """
        if not self.prefix_sharing:
            raise RuntimeError(
                "engine built without prefix_sharing=True cannot fork"
            )
        return self.cache.fork(donor, shared_positions, max_positions)

    def register_prefix(self, slot: KVSlot, prompt_ids) -> None:
        """Make a just-prefilled sequence's prompt visible as a donor."""
        if self._prefix_index is None:
            return
        self._resident[slot.index] = slot
        self._prefix_index.insert(slot.index, prompt_ids)

    # -- cross-request prefix cache ----------------------------------------

    @property
    def prefix_cache(self):
        """The cross-request :class:`PrefixCache`, or None."""
        return getattr(self.cache, "prefix_cache", None)

    def find_cached_prefix(self, prompt_ids) -> tuple:
        """``(pages, positions)`` of the longest revivable cached prefix.

        Checked *after* :meth:`find_prefix_donor` fails (resident
        sharing is cheaper: it needs no pinning and can share past page
        alignment) and before falling back to a cold prefill.
        """
        if self.prefix_cache is None or len(prompt_ids) < 2:
            return [], 0
        return self.cache.find_cached_prefix(prompt_ids)

    def can_revive(self, pages, max_positions: int = 0) -> bool:
        """Whether reviving this cached chain fits right now."""
        if self.prefix_cache is None or not pages:
            return False
        return self.cache.can_revive(len(pages), max_positions)

    def revive_slot(self, pages, max_positions: int = 0) -> KVSlot:
        """Claim a slot whose prefix comes from the cached chain.

        The new slot starts at ``length == len(pages) * page_size``;
        callers prefill only the prompt suffix, exactly as after
        :meth:`fork_slot`.
        """
        if self.prefix_cache is None:
            raise RuntimeError(
                "engine built without cache_pages > 0 cannot revive"
            )
        return self.cache.revive(pages, max_positions)

    # -- forward passes ----------------------------------------------------

    def _forward_single(
        self, token_id: int, slot: KVSlot, mlp: MLPExecutor
    ) -> np.ndarray:
        """One token through one sequence -- the InferenceModel op sequence."""
        cfg = self.config
        position = slot.length
        rope = rope_for_position(position, cfg.head_dim, cfg.rope_theta)
        logits = forward_token_single(
            self.weights, token_id, position, slot, mlp, rope=rope,
        )
        slot.advance()
        return logits

    def prefill(self, slot: KVSlot, prompt_ids: Sequence[int]) -> np.ndarray:
        """Run a prompt into a slot; returns last-position logits.

        With ``prefill_chunk > 0`` the prompt advances in vectorised
        causal chunks (token-identical); otherwise token by token
        through the exact single-sequence op sequence (bit-identical).
        """
        # len(), not truthiness: a numpy-array prompt satisfies the
        # Sequence[int] annotation but raises on bool().
        if len(prompt_ids) == 0:
            raise ValueError("prefill needs at least one token")
        if self.prefill_chunk > 0:
            chunk = self.prefill_chunk
            ids = [int(tok) for tok in prompt_ids]
            logits = None
            for start in range(0, len(ids), chunk):
                logits = self._forward_chunk(ids[start:start + chunk], slot)
            return logits
        logits = None
        # prefill_chunk=0 is the contract path: token-by-token is what
        # "bit-identical to build_engine" means; the vectorised
        # alternative is _forward_chunk.
        # repro: ignore[scalar-loop] -- bit-identity contract path
        for tok in prompt_ids:
            logits = self._forward_single(int(tok), slot, self.prefill_mlp)
        return logits

    def _forward_chunk(self, token_ids: list, slot: KVSlot,
                       mlp: Optional[MLPExecutor] = None,
                       return_all: bool = False) -> np.ndarray:
        """One causal ``(T, d)`` pass over a token chunk.

        Runs every layer as whole-chunk GEMMs: QKV/output projections
        over the ``(T, d)`` chunk, causal-masked attention of the chunk
        queries against the growing cache (prior positions plus the
        chunk itself), and the chunk-capable MLP executor when the
        executor provides one (executors without ``run_tokens`` fall
        back to a per-row loop -- the GEMM-heavy attention path still
        dominates the win).  ``mlp`` overrides the prefill executor --
        :meth:`verify_chunk` passes the serving-alpha sparse executor
        so decode-phase positions get decode-faithful K/V and hidden
        states.  Returns last-position logits, or all ``(T, vocab)``
        rows with ``return_all=True``.
        """
        cfg = self.config
        n_heads, head_dim = cfg.n_heads, cfg.head_dim
        base = slot.length
        n_tokens = len(token_ids)
        total = base + n_tokens
        positions = np.arange(base, total)
        cos, sin = rope_tables(positions, head_dim, cfg.rope_theta)
        if mlp is None:
            mlp = self.prefill_mlp
        run_tokens = getattr(mlp, "run_tokens", None)
        x = self.weights.tok_embed[token_ids].astype(np.float32)
        for layer in range(cfg.n_layers):
            lw = self.weights.layers[layer]
            attn_in = rmsnorm(x, lw.attn_norm, cfg.norm_eps)
            q = attn_in @ lw.wq
            k = attn_in @ lw.wk
            v = attn_in @ lw.wv
            qh = apply_rope(
                q.reshape(n_tokens, n_heads, head_dim).transpose(1, 0, 2),
                cos, sin,
            )                                            # (h, T, hd)
            kh = apply_rope(
                k.reshape(n_tokens, n_heads, head_dim).transpose(1, 0, 2),
                cos, sin,
            )
            k_flat = kh.transpose(1, 0, 2).reshape(n_tokens, cfg.d_model)
            for i in range(n_tokens):
                slot.append(layer, k_flat[i], v[i], base + i)
            keys, values = slot.view(layer, total)       # (L, d)
            ck = keys.reshape(total, n_heads, head_dim).transpose(1, 0, 2)
            cv = values.reshape(total, n_heads, head_dim).transpose(1, 0, 2)
            scores = np.einsum("hqd,htd->hqt", qh, ck) / np.float32(
                np.sqrt(head_dim))           # float32 scale, see inference.py
            causal = np.arange(total)[None, :] <= positions[:, None]
            scores = np.where(causal[None, :, :], scores, -np.inf)
            scores -= scores.max(axis=-1, keepdims=True)
            probs = np.exp(scores)
            probs /= probs.sum(axis=-1, keepdims=True)
            ctx = np.einsum("hqt,htd->qhd", probs, cv)
            x = x + ctx.reshape(n_tokens, cfg.d_model) @ lw.wo
            mlp_in = rmsnorm(x, lw.mlp_norm, cfg.norm_eps)
            if run_tokens is not None:
                x = x + run_tokens(layer, mlp_in)
            else:
                x = x + np.stack(
                    [mlp.run(layer, row) for row in mlp_in]
                )
        for _ in range(n_tokens):
            slot.advance()
        if return_all:
            final = rmsnorm(x, self.weights.final_norm, cfg.norm_eps)
        else:
            final = rmsnorm(x[-1], self.weights.final_norm, cfg.norm_eps)
        return final @ self.weights.lm_head

    def decode_step(
        self, slots: Sequence[KVSlot], token_ids: Sequence[int]
    ) -> np.ndarray:
        """One batched decode step; returns ``(B, vocab)`` logits.

        ``token_ids[i]`` is fed to ``slots[i]`` at its current length.
        """
        return self._forward_batch(slots, token_ids, self.sparse)

    def _forward_batch(
        self, slots: Sequence[KVSlot], token_ids: Sequence[int],
        sparse: BatchedSparseInferMLP,
    ) -> np.ndarray:
        """One batched forward step through ``sparse``; ``(B, vocab)``.

        Shared body of :meth:`decode_step` (the serving-alpha executor)
        and :meth:`draft_step` (an aggressive-alpha draft executor) --
        the attention, projection, and advance machinery is identical;
        only the MLP executor differs.
        """
        if len(slots) != len(token_ids):
            raise ValueError("slots and token_ids must align")
        if not slots:
            raise ValueError("decode_step needs at least one sequence")
        if len(slots) == 1:
            logits = self._forward_single(
                int(token_ids[0]), slots[0], _SingleView(sparse)
            )
            return logits[None, :]

        cfg = self.config
        positions = [slot.length for slot in slots]
        plan = (
            self.attention.plan_step(positions, slots)
            if self.batched_attention else None
        )
        # Memoized per-position tables: sequences at the same length
        # (co-scheduled prefix sharers, the common case) share one table
        # object instead of B identical rebuilds.
        ropes = None if plan is not None else [
            rope_for_position(p, cfg.head_dim, cfg.rope_theta)
            for p in positions
        ]
        x = self.weights.tok_embed[list(token_ids)].astype(np.float32)
        for layer in range(cfg.n_layers):
            lw = self.weights.layers[layer]
            attn_in = rmsnorm(x, lw.attn_norm, cfg.norm_eps)
            q = attn_in @ lw.wq
            k = attn_in @ lw.wk
            v = attn_in @ lw.wv
            if plan is not None:
                ctx = plan.attend_layer(layer, q, k, v, self.cache)
            else:
                ctx = np.empty_like(x)
                # Deliberate scalar fallback when
                # batched_attention=False; it anchors the
                # token-identity equivalence sweep of the batched path.
                # repro: ignore[scalar-loop] -- equivalence anchor
                for i, slot in enumerate(slots):
                    ctx[i] = attend_single(
                        cfg, q[i], k[i], v[i], positions[i], slot, layer,
                        rope=ropes[i],
                    )
            x = x + ctx @ lw.wo
            mlp_in = rmsnorm(x, lw.mlp_norm, cfg.norm_eps)
            x = x + sparse.run_batch(layer, mlp_in)
        for slot in slots:
            slot.advance()
        final = rmsnorm(x, self.weights.final_norm, cfg.norm_eps)
        return final @ self.weights.lm_head

    @property
    def _decode_mlp_single(self) -> MLPExecutor:
        """Single-sequence view of the batched sparse executor."""
        return _SingleView(self.sparse)

    # -- speculative self-drafting -----------------------------------------

    def _draft_mlp(self, alpha: float) -> BatchedSparseInferMLP:
        """The (memoized) aggressive-alpha sparse draft executor.

        A second view over the *same* weights and packed predictor --
        only the per-layer skip threshold changes, so building one costs
        no model memory and no re-packing.
        """
        mlp = self._draft_mlps.get(alpha)
        if mlp is None:
            schedule = AlphaSchedule.uniform(alpha, self.config.n_layers)
            mlp = BatchedSparseInferMLP(
                weights=self.weights,
                predictor=self.sparse.predictor.with_schedule(schedule),
                use_actual_sparsity=self.settings.use_actual_sparsity,
            )
            self._draft_mlps[alpha] = mlp
        return mlp

    def draft_step(
        self, slots: Sequence[KVSlot], token_ids: Sequence[int],
        draft_alpha: Optional[float] = None,
    ) -> np.ndarray:
        """One *draft* decode step; returns ``(B, vocab)`` logits.

        Identical to :meth:`decode_step` except the MLP runs through
        the aggressive-alpha sparse executor, so the logits are cheap
        approximations.  The K/V it appends is draft-quality: callers
        must :meth:`~repro.model.kvcache.KVSlot.truncate` back before
        committing anything (the verify pass re-appends exact K/V).
        ``draft_alpha`` defaults to the engine's
        ``speculation.draft_alpha``.
        """
        if draft_alpha is None:
            if self.speculation is None:
                raise ValueError(
                    "draft_step needs draft_alpha (engine built without "
                    "a speculation config)"
                )
            draft_alpha = self.speculation.draft_alpha
        return self._forward_batch(
            slots, token_ids, self._draft_mlp(draft_alpha)
        )

    def verify_chunk(
        self, slot: KVSlot, token_ids: Sequence[int]
    ) -> np.ndarray:
        """Verify a committed token plus drafts in one causal GEMM pass.

        ``token_ids`` is ``[committed_token, draft_1, ..., draft_k]``;
        the slot must be rewound to the committed length first.  Runs
        the chunked-prefill machinery with the **serving-alpha** sparse
        executor (per-row skip masks keep every row decode-faithful),
        so accepted positions leave behind exactly the K/V a decode
        step would have appended -- up to GEMM rounding, the chunked
        prefill equivalence.  Returns all ``(k + 1, vocab)`` logit
        rows: row ``i`` is the serving engine's prediction *after*
        chunk token ``i``.
        """
        if self._verify_view is None:
            # gather_threshold=1.0: a verify chunk is a handful of
            # highly correlated rows, so the row-gather strategy's
            # submatrix copies (3 fancy-indexed weight reads per layer)
            # cost more than the thin dense GEMM they would avoid --
            # always take run_batch's dense re-zero path instead.
            self._verify_view = _ChunkView(BatchedSparseInferMLP(
                weights=self.weights,
                predictor=self.sparse.predictor,
                use_actual_sparsity=self.settings.use_actual_sparsity,
                gather_threshold=1.0,
            ))
        return self._forward_chunk(
            [int(tok) for tok in token_ids], slot,
            mlp=self._verify_view, return_all=True,
        )


class _SingleView:
    """Adapts :class:`BatchedSparseInferMLP` to the 1-D executor protocol."""

    def __init__(self, batched: BatchedSparseInferMLP):
        self._batched = batched

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        return self._batched.run_batch(layer, x[None, :])[0]


class _ChunkView:
    """Adapts :class:`BatchedSparseInferMLP` to the chunk executor protocol.

    ``run_batch`` re-zeroes each row by its own predicted skip mask, so
    feeding a verify chunk's ``(T, d)`` rows through it keeps every
    row's values decode-faithful while the up/down projections run as
    one GEMM over the union of kept rows -- exactly the verifier shape
    speculation needs.
    """

    def __init__(self, batched: BatchedSparseInferMLP):
        self._batched = batched

    def run(self, layer: int, x: np.ndarray) -> np.ndarray:
        return self._batched.run_batch(layer, x[None, :])[0]

    def run_tokens(self, layer: int, xs: np.ndarray) -> np.ndarray:
        return self._batched.run_batch(layer, xs)

"""FIFO admission queue for the serving scheduler.

Admission order is strictly arrival order by default: the scheduler
admits the head request whenever a KV slot is free, so a long-running
batch can delay but never permanently starve a queued request (every
retirement frees a slot and the head is admitted before the next decode
step).  The correlation-aware scheduler may admit out of order within a
*bounded* window (:meth:`RequestQueue.window` / :meth:`RequestQueue.pop_at`);
the starvation bound then lives in the scheduler, not here.

Empty-queue access raises :class:`EmptyQueueError`, a typed
:class:`IndexError` subclass.  Callers draining the queue must catch the
typed error specifically: a bare ``IndexError`` escaping from admission
bookkeeping is a bug and should crash, not read as "queue empty".
"""

from __future__ import annotations

from collections import deque

from .request import Request


class EmptyQueueError(IndexError):
    """Pop/peek on an empty :class:`RequestQueue`.

    Subclasses :class:`IndexError` for backwards compatibility, but is
    what drain loops should catch -- a plain ``IndexError`` raised by a
    genuine indexing bug must keep propagating.
    """


class RequestQueue:
    """Unbounded FIFO of pending :class:`Request` objects."""

    def __init__(self):
        self._pending = deque()

    def submit(self, request: Request) -> None:
        self._pending.append(request)

    def push_front(self, request: Request) -> None:
        """Re-enqueue ``request`` ahead of FIFO order.

        The preempted-sequence resume path: a sequence evicted mid-flight
        already waited its FIFO turn once, so its resume goes to the head
        of the queue rather than the tail.  Multiple victims pushed in
        reverse preemption order keep their relative admission order.
        """
        self._pending.appendleft(request)

    def pop(self) -> Request:
        """Remove and return the oldest pending request."""
        if not self._pending:
            raise EmptyQueueError("pop from an empty request queue")
        return self._pending.popleft()

    def peek(self) -> Request:
        """The oldest pending request, without removing it.

        Lets the scheduler check the head's worst-case KV demand (paged
        admission) before committing to pop it -- FIFO order means a head
        that does not fit yet simply waits, it is never skipped.
        """
        if not self._pending:
            raise EmptyQueueError("peek at an empty request queue")
        return self._pending[0]

    def window(self, n: int) -> list:
        """The first ``min(n, len)`` pending requests, oldest first.

        The correlation-aware scheduler scans this bounded prefix for a
        request sharing a live prompt prefix; requests beyond the window
        are invisible to reordering, which is what bounds head-of-line
        bypass.
        """
        if n < 1:
            raise ValueError(f"window must be >= 1, got {n}")
        return [self._pending[i] for i in range(min(n, len(self._pending)))]

    def pop_at(self, index: int) -> Request:
        """Remove and return the request at ``index`` (0 = head).

        A negative index is caller bookkeeping gone wrong and raises a
        plain ``IndexError`` regardless of queue state (it must never
        read as "queue empty"); a non-negative index raises
        :class:`EmptyQueueError` only when the queue is empty, and a
        plain ``IndexError`` when it is merely out of range.
        """
        if index < 0:
            raise IndexError(f"pop_at index must be >= 0, got {index}")
        if not self._pending:
            raise EmptyQueueError("pop_at on an empty request queue")
        if index >= len(self._pending):
            raise IndexError(
                f"pop_at({index}) with {len(self._pending)} pending"
            )
        if index == 0:
            return self._pending.popleft()
        request = self._pending[index]
        del self._pending[index]
        return request

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

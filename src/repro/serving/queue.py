"""FIFO admission queue for the serving scheduler.

Admission order is strictly arrival order: the scheduler admits the head
request whenever a KV slot is free, so a long-running batch can delay but
never permanently starve a queued request (every retirement frees a slot
and the head is admitted before the next decode step).
"""

from __future__ import annotations

from collections import deque

from .request import Request


class RequestQueue:
    """Unbounded FIFO of pending :class:`Request` objects."""

    def __init__(self):
        self._pending = deque()

    def submit(self, request: Request) -> None:
        self._pending.append(request)

    def pop(self) -> Request:
        """Remove and return the oldest pending request."""
        if not self._pending:
            raise IndexError("pop from an empty request queue")
        return self._pending.popleft()

    def peek(self) -> Request:
        """The oldest pending request, without removing it.

        Lets the scheduler check the head's worst-case KV demand (paged
        admission) before committing to pop it -- FIFO order means a head
        that does not fit yet simply waits, it is never skipped.
        """
        if not self._pending:
            raise IndexError("peek at an empty request queue")
        return self._pending[0]

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

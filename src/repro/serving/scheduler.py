"""Continuous-batching scheduler over the batched decode engine.

Each scheduler tick:

1. retire sequences that finished last tick, freeing their KV slots;
2. admit queued requests (FIFO) into free slots -- admission prefills the
   prompt and samples the first token, exactly like the single-sequence
   ``generate`` loop samples from the prefill logits.  On a paged KV
   cache, admission additionally gates on the request's *worst-case*
   page demand (``ceil((prompt + max_new - 1) / page_size)`` pages must
   be reservable), so an admitted sequence can never starve for pages
   mid-decode; zero-token requests complete immediately without a slot
   or a prefill.  With prefix sharing the lookup order per admission is
   **resident-donor fork -> prefix-cache revive -> cold prefill**: a
   live donor's pages are forked copy-on-write, else (``cache_pages >
   0``) a retired prefix still cached is revived
   (:meth:`~repro.serving.engine.BatchedEngine.revive_slot`), else the
   whole prompt prefills cold.  Both shared paths charge only the
   unshared worst case -- cached pages count as reservable because the
   pool evicts them on demand;
3. run one batched decode step over all active sequences and sample
   every sequence's next token in **one** vectorised
   :class:`~repro.model.sampler.BatchedSampler` call over the stacked
   ``(B, vocab)`` logits -- per-request
   :class:`~repro.model.sampler.SamplerConfig` (``Request.sampling``,
   falling back to the engine default), greedy rows argmax'd as a batch
   reduction, stochastic rows drawn from per-request RNG streams keyed
   by ``(seed, request_id)``.  Stop-id handling, telemetry stamps, and
   the optional streaming ``on_token`` callback are unified in one
   emission path shared by prefill-sampled first tokens and decode
   tokens.

Sequences join and leave the batch at step granularity (continuous
batching): a finishing request never blocks on its batch-mates and a
pending request waits only until the next free slot.  FIFO admission
makes starvation impossible -- every retirement frees a slot and the
queue head is always admitted first.

**Correlation-aware admission.**  When the engine runs with
``prefix_sharing=True`` and the scheduler is given a ``reorder_window``
> 1, admission may prefer -- from the first ``reorder_window`` queued
requests -- one that shares a *live* prompt prefix with a resident
sequence over the FIFO head.  Such a request is admitted by forking the
donor's KV pages (cheaper: it is charged only its unshared worst case,
and its shared prefill is skipped) and keeps the decode batch's
activation sign patterns correlated, which slows the ``skip^B``
intersection decay (:func:`repro.gpu.batching.batch_skip_fraction` with
``correlation > 0``).  Starvation stays bounded: the head is bypassed at
most ``reorder_window - 1`` times before it must be the next admission,
so FIFO is the steady-state order.

**Step-budgeted ticks (prefill piggybacking).**  With ``step_budget=0``
(the default) admission runs a new sequence's prefill to completion
inline, so one long prompt stalls every resident sequence for its whole
prefill.  With ``step_budget=b > 0`` the tick spends at most ~``b``
model-fed tokens: each decoding resident costs one (its decode token)
and the *leftover* budget runs pending prefill as chunks through the
engine's (chunked-GEMM-capable) prefill path, Sarathi-style -- an
admitted sequence carries its un-prefilled prompt suffix across ticks
and only joins the decode batch once the suffix is done and its first
token is sampled.  A tick with pending prefill always advances it by at
least one token, so admissions finish even when residents alone exceed
the budget.  Residents' inter-token stall per tick is therefore bounded
by the budget, not by the longest queued prompt.  Splitting prefill at
scheduler-chosen boundaries reuses the engine's existing guarantees:
``prefill_chunk=0`` pieces run the exact scalar op sequence
(bit-identical), chunked pieces are token-identical -- so any budget
produces the same tokens per request as ``step_budget=0``.

**Preemption.**  With ``preemption=True``, a page- or slot-starved
admission whose head outranks a resident (strictly greater
:attr:`~repro.serving.request.Request.priority`) evicts the
lowest-priority resident: the victim's KV pages are released (its
*prefilled prompt prefix* is parked in the engine's prefix cache when
one is configured, so restoration is usually a revive) and the victim
is re-enqueued **ahead of FIFO order** via
:meth:`~repro.serving.queue.RequestQueue.push_front`.  Resume restores
the prompt through the normal fork -> revive -> cold-prefill cascade
and then *replays* the already-generated tokens through the decode
path (the sparse executor -- recomputing them with the dense prefill
path would change their K/V values, not just their rounding), so the
resumed sequence continues token-identically.  Already-emitted tokens
are kept, never resampled.  Equal priorities never preempt each other,
which rules out eviction ping-pong; every preemption chain strictly
descends in priority, so it is finite.

**Speculative self-drafting.**  With ``speculation=SpecConfig(...)``
(scheduler knob, falling back to the engine's), each decoding sequence
with draft budget spends its tick on a draft/verify/rollback cycle
instead of one decode step: up to ``spec_k`` cheap draft steps through
the aggressive-alpha sparse executor propose tokens (argmax of the
draft logits -- per-request sampler streams never see draft logits),
the slot is rewound, and one chunked causal GEMM at the serving alpha
verifies all proposals plus a bonus token.  Targets are drawn from the
per-request stream against the *verifier's* logits in the plain decode
draw order, the longest matching draft prefix is accepted (plus the
one corrected or bonus token), and the slot is truncated to exactly
the emitted tokens -- so output is token-identical to
``speculation=None`` across every cache/batching knob, and a
high-acceptance workload emits several tokens per tick.  Drafted
positions stay strictly inside the worst case reserved at admission,
so the no-mid-decode-starvation guarantee is untouched; with
``adaptive=True`` a per-sequence acceptance-rate EMA moves ``spec_k``
between 1 and ``k``.

**Deadline admission and load shedding (PR 10).**  With
``admission="deadline"`` the FIFO arbitration is replaced by
earliest-deadline-first over a bounded queue window: each admission
picks, from the first ``deadline_window`` queued requests, the one with
the earliest TTFT deadline (``submit tick + slo.ttft_steps``; a resumed
evictee that already emitted is ranked by its next ITL deadline, and
requests without an :class:`~repro.serving.request.SLOSpec` rank last
at ``+inf``).  ``Request.priority`` breaks deadline ties -- higher
priority first -- and equal-priority equal-deadline candidates fall
back to FIFO order.  Starvation stays impossible via the same
bounded-bypass rule as ``reorder_window``: once the FIFO head has been
bypassed ``deadline_window - 1`` admissions in a row it *must* be the
next admission.  Under overload the scheduler additionally **sheds**
queued requests whose TTFT deadline has already passed (with inline
prefill the first token can still be emitted in the admission tick, so
a request is hopeless exactly when ``step_count`` exceeds its
deadline): they complete as rejected-typed
:class:`~repro.serving.request.Completion` objects with ``shed=True``
and a ``"shed: ..."`` error, never silently vanish, and free their
decode capacity for requests that can still meet their deadlines --
which is why deadline admission wins *goodput* (SLO-met tokens) over
FIFO on the same overloaded trace.  Preemption victim selection also
becomes deadline-aware: among strictly-lower-priority residents the
one with the most deadline slack is evicted.  SLO deadlines are
expressed in scheduler ticks, so admission order, shedding, and the
goodput accounting are deterministic functions of the trace.
``admission="fifo"`` (the default) keeps every legacy behaviour
bit-for-bit: SLO fields then only add accounting, never scheduling.

The admission loop drains the queue by catching the typed
:class:`~repro.serving.queue.EmptyQueueError` only -- a bare
``IndexError`` escaping from admission bookkeeping is a bug and must
propagate, not read as "queue empty".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .engine import BatchedEngine
from .queue import EmptyQueueError, RequestQueue
from .request import Completion, Request
from .speculative import SpecConfig


@dataclass
class _ActiveSequence:
    """Scheduler-side state of one admitted, unfinished request.

    Under a step budget a sequence holds its slot before its prompt is
    fully in KV: ``pending_prefill`` is the un-prefilled prompt suffix
    still to feed through the prefill path, and ``pending_replay`` the
    already-emitted tokens a resumed (preempted) sequence must re-feed
    through the *decode* path before it can continue.  While either is
    non-empty the sequence is :attr:`restoring` and sits out the decode
    batch.  ``emit_times`` records one wall-clock stamp per emitted
    token (TTFT / inter-token gaps) and ``emit_steps`` the tick count
    of the same emissions (the deterministic clock SLO deadlines are
    judged against); ``preemptions`` counts evictions survived so far.

    Speculation state: ``spec_k`` is this sequence's current draft
    depth (0 = never drafts; set to the config's ``k`` at admission
    when speculation is on), ``spec_ema`` its rolling acceptance-rate
    EMA -- an adaptive config moves ``spec_k`` between 1 and the
    config ceiling as the EMA crosses the thresholds.  Both survive
    preemption.
    """

    request: Request
    slot: object                       # KVSlot
    generated_ids: list
    admitted_step: int
    decode_steps: int = 0
    pending_prefill: tuple = ()
    pending_replay: tuple = ()
    preemptions: int = 0
    first_token_step: int = -1
    emit_times: list = field(default_factory=list)
    emit_steps: list = field(default_factory=list)
    spec_k: int = 0
    spec_ema: float = 1.0

    @property
    def last_token(self) -> int:
        return self.generated_ids[-1]

    @property
    def restoring(self) -> bool:
        """Still feeding prompt/replay tokens; not in the decode batch."""
        return bool(self.pending_prefill) or bool(self.pending_replay)

    def wants_more(self) -> bool:
        return len(self.generated_ids) < self.request.max_new_tokens


@dataclass
class ServeReport:
    """Outcome and telemetry of draining a workload.

    The ``page_*`` fields are populated only when the engine runs a
    paged KV cache (``n_pages > 0``): ``page_occupancy_sum`` sums the
    arena pages in use at each decode tick, so
    :attr:`mean_page_occupancy` / :attr:`mean_page_utilisation` say how
    full the shared page budget actually ran, and
    ``peak_pages_in_use`` bounds the budget a replay would need.

    Prefix-sharing telemetry: ``forked_admissions`` counts requests
    admitted by forking a resident donor, ``prefill_tokens_saved`` sums
    the shared positions whose prefill those forks skipped, and the
    ``shared_pages`` fields track physical pages mapped by more than one
    sequence.

    Prefix-cache telemetry (engine runs ``cache_pages > 0``):
    ``revived_admissions`` counts admissions served by re-pinning
    retired prefix pages, ``revived_tokens`` sums the prompt positions
    those revives did not re-prefill, ``cache_evictions`` counts cached
    pages reclaimed (LRU budget or on-demand by the allocator), and the
    ``cached_pages`` fields track how much of the cache budget actually
    held pages per tick.  ``intersection_skip`` is the realised cross-sequence skip
    fraction at weight-read granularity; ``expected_uncorrelated_skip``
    is the analytical ``skip^B`` decay it would have suffered with
    independent sequences (``B`` = mean batch occupancy, the
    ``correlation = 0`` curve of
    :func:`repro.gpu.batching.batch_skip_fraction`), so their gap is the
    sparsity that correlation-aware batching retained.

    Budgeted-tick / preemption telemetry (PR 6): ``step_budget`` echoes
    the scheduler knob; ``piggybacked_chunks`` / ``piggybacked_tokens``
    count the prefill pieces folded into budgeted ticks alongside
    decode; ``peak_tick_prefill_tokens`` is the largest number of
    prefill+replay tokens any single tick fed (with a budget ``b`` it
    stays <= ``max(b, 1)``, which is the structural evidence that
    resident decode stalls are bounded by the budget, not by prompt
    length); ``preemptions`` / ``resumed_admissions`` count evictions
    and the admissions that restored an evicted sequence; and
    ``replayed_tokens`` / ``replay_seconds`` measure the decode-path
    token replay those restorations performed.  Wall-clock tail latency
    comes from the completions themselves: :meth:`ttft_seconds_percentile`
    and :meth:`itl_seconds_percentile` aggregate per-request
    time-to-first-token and inter-token gaps.

    Sampling telemetry (PR 8): ``greedy_tokens`` counts tokens emitted
    by batched argmax (``temperature == 0``), ``sampled_tokens`` those
    drawn from a per-request RNG stream (stochastic configs), and
    ``sampler_seconds`` the wall time the vectorised sampler spent
    turning stacked logits into token ids (part of
    :attr:`wall_seconds`).  ``greedy_tokens + sampled_tokens ==
    tokens_generated`` always holds.

    Speculation telemetry (PR 9, scheduler runs ``speculation=...``):
    ``drafted_tokens`` counts draft proposals fed through the
    aggressive-alpha executor, ``accepted_tokens`` those the verify
    pass confirmed (:attr:`acceptance_rate` is their ratio; the extra
    emitted token per verify -- the corrected or bonus one -- is
    counted in neither), and ``draft_seconds`` / ``verify_seconds``
    the wall time in the draft steps and the chunked verify passes
    (both part of :attr:`wall_seconds`).

    Goodput / SLO telemetry (PR 10): ``admission`` echoes the
    scheduler knob; every completion lands in exactly one of
    ``slo_met_requests`` (its :class:`~repro.serving.request.SLOSpec`
    was met, or it carried none), ``slo_missed_requests`` (deadline
    violated, or rejected while holding an SLO), or ``shed_requests``
    (dropped hopeless under deadline admission), so the three always
    sum to ``len(completions)``.  ``goodput_tokens`` counts only the
    tokens of SLO-met completions (``goodput_tokens <=
    tokens_generated`` by construction; :attr:`goodput_fraction` is
    the ratio).  ``class_stats`` keys each ``slo_class`` tag
    (``"none"`` for SLO-less requests) to the same counters plus a
    token total, and sums across classes reproduce the report totals
    exactly -- the accounting identity the property suite locks.
    Per-class tick-based percentiles come from
    :meth:`ttft_steps_percentile` / :meth:`itl_steps_percentile` and
    the merged view :meth:`class_telemetry`.
    """

    completions: List[Completion] = field(default_factory=list)
    decode_steps: int = 0
    tokens_generated: int = 0
    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    occupancy_sum: int = 0             # sum of batch sizes over decode steps
    peak_occupancy: int = 0            # largest decode batch observed
    n_pages: int = 0                   # page budget (0 = fixed-slot cache)
    page_occupancy_sum: int = 0        # sum of pages in use over decode steps
    peak_pages_in_use: int = 0
    forked_admissions: int = 0         # admissions served by a KV fork
    prefill_tokens_saved: int = 0      # prompt positions reused, not re-run
    shared_pages_sum: int = 0          # sum of shared pages over decode steps
    peak_shared_pages: int = 0
    cache_pages: int = 0               # prefix-cache budget (0 = disabled)
    revived_admissions: int = 0        # admissions served from the cache
    revived_tokens: int = 0            # prompt positions revived, not re-run
    cache_evictions: int = 0           # cached pages reclaimed (LRU/demand)
    cached_pages_sum: int = 0          # sum of cached pages over decode steps
    peak_cached_pages: int = 0
    intersection_skip: float = 0.0     # realised cross-sequence skip
    mean_sequence_skip: float = 0.0    # per-sequence (batch=1) ceiling
    expected_uncorrelated_skip: float = 0.0   # skip^B at mean occupancy
    # Batched-attention telemetry (engine runs batched_attention=True):
    # padded vs useful K/V cells gathered and length-bucket counts, so
    # the padding the length masks threw away is visible per run.
    attn_batched_steps: int = 0        # decode steps on the batched path
    attn_buckets_sum: int = 0          # length buckets over those steps
    attn_useful_positions: int = 0     # gathered cells inside a length
    attn_padded_positions: int = 0     # all gathered cells incl. padding
    step_budget: int = 0               # scheduler knob (0 = inline prefill)
    piggybacked_chunks: int = 0        # prefill pieces run inside ticks
    piggybacked_tokens: int = 0        # tokens those pieces fed
    peak_tick_prefill_tokens: int = 0  # largest per-tick prefill+replay feed
    preemptions: int = 0               # sequences evicted mid-flight
    resumed_admissions: int = 0        # admissions restoring an evictee
    replayed_tokens: int = 0           # decode-path tokens re-fed on resume
    replay_seconds: float = 0.0        # wall time spent in that replay
    greedy_tokens: int = 0             # tokens emitted by batched argmax
    sampled_tokens: int = 0            # tokens drawn from request RNG streams
    sampler_seconds: float = 0.0       # wall time in the vectorised sampler
    drafted_tokens: int = 0            # draft proposals fed to verification
    accepted_tokens: int = 0           # drafts the verify pass confirmed
    draft_seconds: float = 0.0         # wall time in aggressive-alpha drafting
    verify_seconds: float = 0.0        # wall time in chunked verify passes
    admission: str = "fifo"            # scheduler knob ("fifo" | "deadline")
    slo_met_requests: int = 0          # completions inside their SLO (or none)
    slo_missed_requests: int = 0       # completions that violated their SLO
    shed_requests: int = 0             # hopeless requests dropped pre-admission
    goodput_tokens: int = 0            # tokens of SLO-met completions only
    class_stats: dict = field(default_factory=dict)   # slo_class -> counters

    @property
    def wall_seconds(self) -> float:
        return (self.prefill_seconds + self.decode_seconds
                + self.replay_seconds + self.sampler_seconds
                + self.draft_seconds + self.verify_seconds)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens the verify pass accepted."""
        return (self.accepted_tokens / self.drafted_tokens
                if self.drafted_tokens else 0.0)

    @property
    def mean_batch_occupancy(self) -> float:
        return self.occupancy_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def mean_page_occupancy(self) -> float:
        """Mean arena pages in use per decode tick (paged cache only)."""
        return self.page_occupancy_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def mean_page_utilisation(self) -> float:
        """Mean fraction of the page budget in use (paged cache only)."""
        return self.mean_page_occupancy / self.n_pages if self.n_pages else 0.0

    @property
    def mean_shared_pages(self) -> float:
        """Mean pages mapped by >1 sequence per decode tick."""
        return self.shared_pages_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def total_prompt_tokens(self) -> int:
        """Prompt positions across all admissions, however served."""
        return (self.prefill_tokens + self.prefill_tokens_saved
                + self.revived_tokens)

    @property
    def prefill_sharing_fraction(self) -> float:
        """Fraction of prompt positions served from a resident fork."""
        total = self.total_prompt_tokens
        return self.prefill_tokens_saved / total if total else 0.0

    @property
    def prefill_cache_fraction(self) -> float:
        """Fraction of prompt positions revived from the prefix cache."""
        total = self.total_prompt_tokens
        return self.revived_tokens / total if total else 0.0

    @property
    def prefill_reuse_fraction(self) -> float:
        """Fraction of prompt positions not re-prefilled (fork + revive)."""
        total = self.total_prompt_tokens
        saved = self.prefill_tokens_saved + self.revived_tokens
        return saved / total if total else 0.0

    @property
    def mean_cached_pages(self) -> float:
        """Mean prefix-cache pages held per decode tick."""
        return self.cached_pages_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def skip_retained_vs_uncorrelated(self) -> float:
        """Realised intersection skip minus the independent ``skip^B``."""
        return self.intersection_skip - self.expected_uncorrelated_skip

    @property
    def ttft_values(self) -> list:
        """Per-request time-to-first-token, for requests that have one.

        Requests enqueued without :meth:`ContinuousBatchingScheduler.submit`
        (no submit timestamp) or that emitted nothing are excluded.
        """
        return [
            c.ttft_seconds for c in self.completions
            if c.ttft_seconds is not None
        ]

    @property
    def itl_values(self) -> list:
        """All inter-token gaps (seconds) across every completion.

        One entry per emitted token after each request's first, so a
        resident stalled behind a long inline prefill contributes one
        large gap -- the tail of this distribution is what the step
        budget exists to bound.
        """
        return [v for c in self.completions for v in c.itl_seconds]

    def ttft_seconds_percentile(self, q: float) -> float:
        """The ``q``-th percentile of time-to-first-token (0 if none)."""
        values = self.ttft_values
        return float(np.percentile(values, q)) if values else 0.0

    def itl_seconds_percentile(self, q: float) -> float:
        """The ``q``-th percentile of inter-token gaps (0 if none)."""
        values = self.itl_values
        return float(np.percentile(values, q)) if values else 0.0

    @property
    def max_itl_seconds(self) -> float:
        """Worst single inter-token stall any request observed."""
        values = self.itl_values
        return max(values) if values else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Fraction of generated tokens that counted as goodput."""
        return (self.goodput_tokens / self.tokens_generated
                if self.tokens_generated else 0.0)

    @staticmethod
    def _class_of(completion: Completion) -> str:
        """The completion's traffic-class tag (``"none"`` without an SLO)."""
        slo = completion.request.slo
        return slo.slo_class if slo is not None else "none"

    def _class_completions(self, slo_class: Optional[str]) -> list:
        if slo_class is None:
            return self.completions
        return [c for c in self.completions if self._class_of(c) == slo_class]

    def ttft_steps_percentile(
        self, q: float, slo_class: Optional[str] = None
    ) -> float:
        """``q``-th percentile of tick-based TTFT, optionally per class.

        The deterministic counterpart of :meth:`ttft_seconds_percentile`:
        measured in scheduler ticks against ``submitted_step``, so the
        same trace yields the same percentile on any machine.  Requests
        that emitted nothing are excluded; 0 if none qualify.
        """
        values = [
            c.ttft_steps for c in self._class_completions(slo_class)
            if c.ttft_steps is not None
        ]
        return float(np.percentile(values, q)) if values else 0.0

    def itl_steps_percentile(
        self, q: float, slo_class: Optional[str] = None
    ) -> float:
        """``q``-th percentile of tick-based inter-token gaps (0 if none)."""
        values = [
            v for c in self._class_completions(slo_class)
            for v in c.itl_steps
        ]
        return float(np.percentile(values, q)) if values else 0.0

    def class_telemetry(self) -> dict:
        """Per-class goodput counters merged with tick percentiles.

        One entry per ``slo_class`` seen (``"none"`` for SLO-less
        requests): the :attr:`class_stats` counters plus
        ``ttft_p99_steps`` / ``itl_p99_steps`` for that class -- the
        digest :func:`repro.eval.reporting.format_goodput` tabulates.
        """
        merged = {}
        for tag, stats in sorted(self.class_stats.items()):
            merged[tag] = dict(stats)
            merged[tag]["ttft_p99_steps"] = self.ttft_steps_percentile(99, tag)
            merged[tag]["itl_p99_steps"] = self.itl_steps_percentile(99, tag)
        return merged

    def _attn_telemetry(self):
        """This run's counters as an AttentionTelemetry (one source of
        truth for the derived fractions)."""
        from ..model.batch_attention import AttentionTelemetry

        return AttentionTelemetry(
            batched_steps=self.attn_batched_steps,
            buckets_sum=self.attn_buckets_sum,
            useful_positions=self.attn_useful_positions,
            padded_positions=self.attn_padded_positions,
        )

    @property
    def attn_padding_waste(self) -> float:
        """Fraction of gathered K/V cells that were padding."""
        return self._attn_telemetry().padding_waste_fraction

    @property
    def mean_attn_buckets(self) -> float:
        """Mean length buckets per batched-attention decode step."""
        return self._attn_telemetry().mean_buckets_per_step

    @property
    def decode_tokens_per_second(self) -> float:
        return self.tokens_generated / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def tokens_per_second(self) -> float:
        """End-to-end throughput including prefill time."""
        return self.tokens_generated / self.wall_seconds if self.wall_seconds else 0.0


class ContinuousBatchingScheduler:
    """Drains a request queue through a :class:`BatchedEngine`.

    ``reorder_window`` enables correlation-aware admission (see module
    docstring): values <= 1 mean strict FIFO; a window of ``w`` lets a
    request sharing a live prefix jump at most ``w - 1`` positions, and
    the head is never bypassed more than ``w - 1`` admissions in a row.

    ``step_budget`` bounds the model-fed tokens per tick: 0 (default)
    keeps the historical run-prefill-inline admission, ``b > 0`` defers
    admitted prompts into per-tick prefill chunks that ride alongside
    decode (see module docstring).  ``preemption`` enables
    priority-based eviction of residents for a starved higher-priority
    head; with every request at the default priority it never fires.

    ``on_token`` is an optional streaming callback, invoked as
    ``on_token(request_id, token_id, step)`` for every *emitted* token
    the instant the emission path records it -- stop tokens are never
    reported (they are never emitted), and a resumed sequence's replayed
    tokens are not re-reported.  The callback runs synchronously inside
    the tick; an exception it raises propagates out of :meth:`step`.

    ``speculation`` enables speculative self-drafting: each decoding
    sequence with draft budget runs up to ``spec_k`` cheap
    aggressive-alpha draft steps per tick, one chunked causal GEMM
    verifies all drafts plus the bonus token at the serving alpha, and
    rejected draft K/V is rolled back with ``truncate``.  Accepted
    tokens are re-drawn from the per-request sampler stream against the
    *verifier's* logits (greedy rows compare argmax), so output is
    token-identical to ``speculation=None``.  ``None`` (the default)
    falls back to the engine's own ``speculation`` knob; drafted
    positions never exceed the worst case already reserved at
    admission, so page math is unchanged.

    ``admission`` selects the arbitration policy: ``"fifo"`` (default)
    is the historical queue-order admission, ``"deadline"`` replaces it
    with earliest-TTFT-deadline-first over the first ``deadline_window``
    queued requests plus load shedding of requests whose deadline has
    already passed (see module docstring).  Deadline admission and
    ``reorder_window > 1`` both rearbitrate the same window, so they are
    mutually exclusive; ``deadline_window`` bounds both the EDF scan and
    the head-bypass streak (the head is forced through after
    ``deadline_window - 1`` consecutive bypasses).
    """

    def __init__(
        self,
        engine: BatchedEngine,
        queue: Optional[RequestQueue] = None,
        max_batch_size: Optional[int] = None,
        reorder_window: int = 0,
        step_budget: int = 0,
        preemption: bool = False,
        on_token=None,
        speculation: Optional[SpecConfig] = None,
        admission: str = "fifo",
        deadline_window: int = 8,
    ):
        if reorder_window < 0:
            raise ValueError(
                f"reorder_window must be >= 0, got {reorder_window}"
            )
        if step_budget < 0:
            raise ValueError(
                f"step_budget must be >= 0, got {step_budget}"
            )
        if on_token is not None and not callable(on_token):
            raise ValueError(
                f"on_token must be callable or None, got {type(on_token).__name__}"
            )
        if admission not in ("fifo", "deadline"):
            raise ValueError(
                f"admission must be 'fifo' or 'deadline', got {admission!r}"
            )
        if deadline_window < 1:
            raise ValueError(
                f"deadline_window must be >= 1, got {deadline_window}"
            )
        if admission == "deadline" and reorder_window > 1:
            raise ValueError(
                "admission='deadline' and reorder_window > 1 both "
                "rearbitrate the queue window; use one or the other"
            )
        self.on_token = on_token
        self.engine = engine
        self.queue = queue if queue is not None else RequestQueue()
        self.max_batch_size = min(
            max_batch_size or engine.max_batch_size, engine.max_batch_size
        )
        self.reorder_window = reorder_window
        self.step_budget = step_budget
        self.preemption = bool(preemption)
        self.admission = admission
        self.deadline_window = deadline_window
        self.speculation = (
            speculation if speculation is not None
            else getattr(engine, "speculation", None)
        )
        self.active: List[_ActiveSequence] = []
        self.step_count = 0
        self._head_skips = 0       # consecutive admissions that bypassed head
        self._submit_times = {}    # request_id -> perf_counter at submit()
        self._submit_steps = {}    # request_id -> step_count at submit()
        self._resume_state = {}    # request_id -> progress of an evictee
        self._tick_prefill_tokens = 0   # prefill+replay tokens fed this tick
        self.report = ServeReport(
            n_pages=getattr(engine.cache, "n_pages", 0),
            cache_pages=getattr(engine, "cache_pages", 0),
            step_budget=step_budget,
            admission=admission,
        )
        # The prefix cache's eviction counter is cumulative across the
        # engine's lifetime; snapshot it so a reused engine still yields
        # per-run telemetry.
        prefix_cache = getattr(engine, "prefix_cache", None)
        self._evictions_baseline = (
            prefix_cache.evictions if prefix_cache is not None else 0
        )
        # Engine attention counters are cumulative across its lifetime;
        # snapshot them so a reused (or pre-warmed) engine still yields
        # per-run telemetry, like every other ServeReport counter.
        attn = engine.attn_telemetry
        self._attn_baseline = (
            attn.batched_steps, attn.buckets_sum,
            attn.useful_positions, attn.padded_positions,
        )

    @staticmethod
    def _worst_case_positions(request: Request) -> int:
        """KV positions the request could feed its slot.

        A sequence feeds ``prompt_len + max_new_tokens - 1`` tokens (the
        final sampled token is never fed back).  Zero-token requests
        never prefill (they complete empty at admission), so they need
        no KV at all -- whatever their prompt length.
        """
        if request.max_new_tokens == 0:
            return 0
        return request.prompt_len + request.max_new_tokens - 1

    def _capacity_error(self, request: Request) -> Optional[str]:
        """Why ``request`` can never fit the KV cache, or None if it can.

        Checks against :attr:`max_request_positions` -- the per-slot cap
        for the fixed cache, and additionally the whole page budget for a
        paged cache (a request bigger than the entire arena could never
        be admitted no matter how empty the system is).
        """
        needed = self._worst_case_positions(request)
        capacity = self.engine.cache.max_request_positions
        if needed <= capacity:
            return None
        return (
            f"request {request.request_id} needs up to {needed} KV "
            f"positions but slots hold {capacity}; shorten the prompt "
            f"or max_new_tokens, or raise the engine's max_seq_len"
        )

    def submit(self, request: Request) -> None:
        """Queue a request, rejecting oversized ones up front.

        Admission re-checks capacity (the queue is injectable), but
        failing fast here gives the caller the error as an exception
        instead of an errored :class:`Completion`.
        """
        reason = self._capacity_error(request)
        if reason is not None:
            raise ValueError(reason)
        self._submit_times[request.request_id] = time.perf_counter()
        self._submit_steps[request.request_id] = self.step_count
        self.queue.submit(request)

    @property
    def n_pending(self) -> int:
        return len(self.queue)

    @property
    def idle(self) -> bool:
        return not self.active and not self.queue

    # -- one tick ----------------------------------------------------------

    def _sampling_of(self, request: Request):
        """The request's effective SamplerConfig (engine default fallback)."""
        if request.sampling is not None:
            return request.sampling
        return self.engine.sampler.default

    def _sample_tokens(self, seqs, logits: np.ndarray) -> np.ndarray:
        """Next token per sequence, in one vectorised sampler call.

        ``logits`` is the stacked ``(B, vocab)`` decode output with row
        ``i`` belonging to ``seqs[i]``.  Greedy rows are argmax'd as one
        batch reduction; stochastic rows draw from their per-request
        streams.  Times the sampler and splits the greedy/sampled token
        counts into the report.
        """
        configs = [self._sampling_of(seq.request) for seq in seqs]
        request_ids = [seq.request.request_id for seq in seqs]
        t0 = time.perf_counter()
        tokens = self.engine.sampler.sample(logits, configs, request_ids)
        self.report.sampler_seconds += time.perf_counter() - t0
        n_greedy = sum(1 for c in configs if c.temperature == 0.0)
        self.report.greedy_tokens += n_greedy
        self.report.sampled_tokens += len(configs) - n_greedy
        return tokens

    def _emit_token(
        self, seq: _ActiveSequence, token_id: int, emit_time: float,
        finished: List[Completion],
    ) -> bool:
        """Record one sampled token; False when it finished the sequence.

        The single emission path for prefill-sampled first tokens and
        decode-step tokens alike: the per-request stop-id check (a stop
        token is never emitted), the first-token/inter-token telemetry
        stamps, the streaming ``on_token`` callback, and completion on
        budget exhaustion.
        """
        request = seq.request
        if request.stop_ids and token_id in request.stop_ids:
            finished.append(self._complete(seq))
            return False
        seq.generated_ids.append(token_id)
        if seq.first_token_step < 0:
            seq.first_token_step = self.step_count
        seq.emit_times.append(emit_time)
        seq.emit_steps.append(self.step_count)
        self.report.tokens_generated += 1
        if self.on_token is not None:
            self.on_token(request.request_id, token_id, self.step_count)
        if seq.wants_more():
            return True
        finished.append(self._complete(seq))
        return False

    def _complete(self, seq: _ActiveSequence) -> Completion:
        self.engine.sampler.drop_stream(seq.request.request_id)
        self.engine.release_slot(seq.slot)
        # Retirement is the moment pages get parked; sample here so the
        # cached-page peak sees a burst's tail, not just decode ticks.
        self._sample_cache_telemetry(tick=False)
        submit_t = self._submit_times.pop(seq.request.request_id, None)
        ttft = None
        if seq.emit_times and submit_t is not None:
            ttft = seq.emit_times[0] - submit_t
        itl = [
            b - a for a, b in zip(seq.emit_times, seq.emit_times[1:])
        ]
        completion = Completion(
            request=seq.request,
            generated_ids=list(seq.generated_ids),
            admitted_step=seq.admitted_step,
            finished_step=self.step_count,
            decode_steps=seq.decode_steps,
            first_token_step=seq.first_token_step,
            preemptions=seq.preemptions,
            ttft_seconds=ttft,
            itl_seconds=itl,
            submitted_step=self._submit_steps.pop(
                seq.request.request_id, 0
            ),
            emit_steps=list(seq.emit_steps),
        )
        self._account(completion)
        return completion

    def _account(self, completion: Completion) -> None:
        """Record ``completion`` and settle its goodput/SLO ledger entry.

        The single append path into ``report.completions`` -- every
        completion flavour (decoded, rejected, zero-token, shed) passes
        through here exactly once, which is what makes the accounting
        identity (met + missed + shed == len(completions), per-class
        sums == report totals) structural rather than hoped-for.
        """
        report = self.report
        report.completions.append(completion)
        tag = report._class_of(completion)
        stats = report.class_stats.setdefault(tag, {
            "requests": 0, "slo_met": 0, "slo_missed": 0, "shed": 0,
            "goodput_tokens": 0, "tokens": 0,
        })
        stats["requests"] += 1
        stats["tokens"] += completion.n_generated
        if completion.shed:
            completion.slo_met = False
            report.shed_requests += 1
            stats["shed"] += 1
            return
        slo = completion.request.slo
        if slo is None:
            met = True     # vacuously in-SLO; slo_met stays None
        else:
            met = completion.error is None and slo.met(
                completion.submitted_step, completion.emit_steps
            )
            completion.slo_met = met
        if met:
            report.slo_met_requests += 1
            report.goodput_tokens += completion.n_generated
            stats["slo_met"] += 1
            stats["goodput_tokens"] += completion.n_generated
        else:
            report.slo_missed_requests += 1
            stats["slo_missed"] += 1

    def _admission_plan(self, request: Request) -> tuple:
        """``(donor, shared, pages, needed, fits)`` for admitting ``request``.

        The lookup cascade is resident-donor fork -> prefix-cache revive
        -> cold prefill: a live donor's pages are cheapest (no pinning,
        shareable past page alignment), a cached chain still skips its
        prefill, and a plain worst-case allocation is the fallback.
        ``shared`` is the positions the chosen path skips (donor-shared
        for a fork, chain length for a revive); ``pages`` is the cached
        chain to revive or None.
        """
        needed = self._worst_case_positions(request)
        if self.engine.prefix_sharing:
            donor, shared = self.engine.find_prefix_donor(request.prompt_ids)
            if donor is not None and \
                    self.engine.can_fork(donor, shared, needed):
                return donor, shared, None, needed, True
            pages, revived = self.engine.find_cached_prefix(
                request.prompt_ids
            )
            if pages and self.engine.can_revive(pages, needed):
                return None, revived, pages, needed, True
        return None, 0, None, needed, self.engine.can_admit(needed)

    def _choose_admission(self, head: Request) -> Optional[tuple]:
        """The next admission: the head, or a bounded-window jump.

        Returns ``(queue_index, request, donor, shared, pages, needed)``
        or ``None`` when nothing can be admitted this tick.  A request
        later in the window is chosen only when it shares a live prefix
        *longer* than whatever the head's plan already skips (fork or
        revive), its fork fits, and the head has not yet been bypassed
        ``reorder_window - 1`` times in a row -- after that the head is
        guaranteed to be the next admission, bounding starvation.
        Window jumps stay donor-based: their point is co-scheduling
        correlated sign patterns with a *live* sharer, which a cached
        (retired) prefix cannot offer.
        """
        donor, shared, pages, needed, fits = self._admission_plan(head)
        best = (0, head, donor, shared, pages, needed) if fits else None
        best_shared = shared if fits else 0
        if self.reorder_window > 1 and self.engine.prefix_sharing and \
                self._head_skips < self.reorder_window - 1:
            for i, request in enumerate(self.queue.window(self.reorder_window)):
                if i == 0:
                    continue
                if request.max_new_tokens == 0 or \
                        self._capacity_error(request) is not None:
                    continue   # handled (cheaply) when it reaches the head
                c_needed = self._worst_case_positions(request)
                c_donor, c_shared = self.engine.find_prefix_donor(
                    request.prompt_ids
                )
                if c_donor is None or c_shared <= best_shared:
                    continue
                if not self.engine.can_fork(c_donor, c_shared, c_needed):
                    continue
                best = (i, request, c_donor, c_shared, None, c_needed)
                best_shared = c_shared
        return best

    # -- deadline admission (admission="deadline") -------------------------

    def _queue_deadline(self, request: Request) -> float:
        """The tick by which ``request`` next owes a token, from the queue.

        A fresh request owes its first token by ``submitted_step +
        slo.ttft_steps``; a preempted evictee that already emitted owes
        its next token one ITL deadline after its last emission (its
        TTFT contract is settled and survives in ``_resume_state``).
        Requests with no SLO -- or none bounding the owed token -- rank
        last at ``+inf``.
        """
        slo = request.slo
        if slo is None:
            return float("inf")
        resume = self._resume_state.get(request.request_id)
        if resume is not None and resume["emit_steps"]:
            if slo.itl_steps is None:
                return float("inf")
            return resume["emit_steps"][-1] + slo.itl_steps
        if slo.ttft_steps is None:
            return float("inf")
        return self._submit_steps.get(request.request_id, 0) + slo.ttft_steps

    def _resident_deadline(self, seq: _ActiveSequence) -> float:
        """The tick by which resident ``seq`` next owes a token."""
        slo = seq.request.slo
        if slo is None:
            return float("inf")
        if seq.emit_steps:
            if slo.itl_steps is None:
                return float("inf")
            return seq.emit_steps[-1] + slo.itl_steps
        if slo.ttft_steps is None:
            return float("inf")
        return (
            self._submit_steps.get(seq.request.request_id, 0)
            + slo.ttft_steps
        )

    def _choose_deadline_candidate(self) -> tuple:
        """``(queue_index, request)`` for the next deadline admission.

        Earliest deadline first over the first ``deadline_window``
        queued requests; ``priority`` breaks deadline ties (higher
        first) and the strict ``<`` comparison keeps the first-seen --
        i.e. FIFO-earliest -- winner on full ties.  Once the head has
        been bypassed ``deadline_window - 1`` times in a row it is
        forced through regardless of deadlines (the same bounded-bypass
        rule ``reorder_window`` uses), so no feasible request starves.
        """
        window = self.queue.window(self.deadline_window)
        if self._head_skips >= self.deadline_window - 1:
            return 0, window[0]
        best_index, best_rank = 0, None
        for i, request in enumerate(window):
            rank = (self._queue_deadline(request), -request.priority)
            if best_rank is None or rank < best_rank:
                best_index, best_rank = i, rank
        return best_index, window[best_index]

    def _shed_hopeless(self, finished: List[Completion]) -> None:
        """Drop queued requests whose TTFT deadline has already passed.

        A queued request is hopeless once ``step_count`` exceeds its
        TTFT deadline: inline admission can still emit a first token in
        the admission tick itself, so ``step_count == deadline`` is the
        last tick that could save it.  Hopeless requests complete as
        rejected-typed, ``shed=True`` completions (never silently
        vanish).  Preempted evictees that already emitted a token are
        never shed -- their TTFT contract is already settled and their
        generated tokens must not be discarded.
        """
        while True:
            victim_index = None
            for i, request in enumerate(self.queue.window(self.deadline_window)):
                slo = request.slo
                if slo is None or slo.ttft_steps is None:
                    continue
                resume = self._resume_state.get(request.request_id)
                if resume is not None and resume["emit_steps"]:
                    continue
                deadline = (
                    self._submit_steps.get(request.request_id, 0)
                    + slo.ttft_steps
                )
                if self.step_count > deadline:
                    victim_index = i
                    break
            if victim_index is None:
                return
            request = self.queue.pop_at(victim_index)
            if victim_index == 0:
                self._head_skips = 0
            self._submit_times.pop(request.request_id, None)
            submitted = self._submit_steps.pop(request.request_id, 0)
            self._resume_state.pop(request.request_id, None)
            completion = Completion(
                request=request, generated_ids=[],
                admitted_step=self.step_count,
                finished_step=self.step_count,
                error=(
                    f"shed: request {request.request_id} missed its TTFT "
                    f"deadline (submitted tick {submitted} + "
                    f"{request.slo.ttft_steps} < tick {self.step_count})"
                ),
                shed=True,
                submitted_step=submitted,
            )
            self._account(completion)
            finished.append(completion)

    def _admit(self, finished: List[Completion]) -> None:
        evicted: List[Request] = []
        head_blocked = False
        deadline_mode = self.admission == "deadline"
        while True:
            if deadline_mode:
                # Shed-first keeps hopeless requests from ever winning
                # the EDF scan: their (already passed) deadlines would
                # otherwise rank them ahead of every savable request.
                self._shed_hopeless(finished)
                if not self.queue:
                    break
                cand_index, head = self._choose_deadline_candidate()
            else:
                try:
                    head = self.queue.peek()
                except EmptyQueueError:
                    break
                cand_index = 0
            reason = self._capacity_error(head)
            if reason is not None:
                # Queued without going through submit(); reject instead
                # of letting KVSlot.append blow up the whole batch.
                # Rejection consumes no slot, so a full batch never
                # delays it.
                self.queue.pop_at(cand_index)
                self._head_skips = (
                    0 if cand_index == 0 else self._head_skips + 1
                )
                self._submit_times.pop(head.request_id, None)
                completion = Completion(
                    request=head, generated_ids=[],
                    admitted_step=self.step_count,
                    finished_step=self.step_count, error=reason,
                    submitted_step=self._submit_steps.pop(
                        head.request_id, 0
                    ),
                )
                self._account(completion)
                finished.append(completion)
                continue
            if head.max_new_tokens == 0:
                # Nothing to decode: complete empty without burning a KV
                # slot, a decode-batch seat, or a prefill the output can
                # never use.
                self.queue.pop_at(cand_index)
                self._head_skips = (
                    0 if cand_index == 0 else self._head_skips + 1
                )
                self._submit_times.pop(head.request_id, None)
                completion = Completion(
                    request=head, generated_ids=[],
                    admitted_step=self.step_count,
                    finished_step=self.step_count,
                    submitted_step=self._submit_steps.pop(
                        head.request_id, 0
                    ),
                )
                self._account(completion)
                finished.append(completion)
                continue
            if len(self.active) >= self.max_batch_size:
                if self._maybe_preempt(head, evicted):
                    continue   # a seat was freed; retry the head
                head_blocked = bool(evicted)
                break
            if deadline_mode:
                donor, shared, pages, needed, fits = \
                    self._admission_plan(head)
                choice = (
                    (cand_index, head, donor, shared, pages, needed)
                    if fits else None
                )
            else:
                choice = self._choose_admission(head)
            if choice is None:
                # The head waits for a seat and slots/pages, and no
                # in-window prefix-sharer can take its place -- unless
                # preemption can evict a lower-priority resident.
                if self._maybe_preempt(head, evicted):
                    continue   # pages were freed; retry the head
                head_blocked = bool(evicted)
                break
            index, request, donor, shared, pages, needed = choice
            self.queue.pop_at(index)
            if index == 0:
                self._head_skips = 0
            else:
                self._head_skips += 1
            if donor is not None:
                # Fork: shared prefix K/V comes from the donor's pages;
                # only the unshared suffix is prefilled and only the
                # unshared worst case is reserved.
                slot = self.engine.fork_slot(donor, shared, needed)
                prompt_suffix = request.prompt_ids[shared:]
                self.report.forked_admissions += 1
                self.report.prefill_tokens_saved += shared
            elif pages:
                # Revive: the prefix K/V is re-pinned from the cross-
                # request cache -- same prefill saving as a fork, but
                # the donor retired long ago.  A preempted sequence's
                # parked prompt usually resumes through this path.
                slot = self.engine.revive_slot(pages, needed)
                prompt_suffix = request.prompt_ids[shared:]
                self.report.revived_admissions += 1
                self.report.revived_tokens += shared
            else:
                slot = self.engine.allocate_slot(needed)
                prompt_suffix = request.prompt_ids
            seq = _ActiveSequence(
                request=request, slot=slot, generated_ids=[],
                admitted_step=self.step_count,
            )
            if self.speculation is not None:
                seq.spec_k = self.speculation.k
            resume = self._resume_state.pop(request.request_id, None)
            if resume is not None:
                # Restoring an evictee: keep every already-emitted token
                # and its telemetry; only the KV state is rebuilt.
                seq.generated_ids = list(resume["generated"])
                seq.decode_steps = resume["decode_steps"]
                seq.admitted_step = resume["admitted_step"]
                seq.preemptions = resume["preemptions"]
                seq.first_token_step = resume["first_token_step"]
                seq.emit_times = list(resume["emit_times"])
                seq.emit_steps = list(resume["emit_steps"])
                seq.spec_k = resume.get("spec_k", seq.spec_k)
                seq.spec_ema = resume.get("spec_ema", seq.spec_ema)
                self.report.resumed_admissions += 1
            # The last emitted token is never replayed: the next decode
            # tick feeds it, exactly as it would have without eviction.
            replay = tuple(seq.generated_ids[:-1])
            if self.step_budget > 0:
                # Budgeted tick: the prompt suffix (and any replay) runs
                # as per-tick chunks in _run_restoration, not inline.
                seq.pending_prefill = tuple(prompt_suffix)
                seq.pending_replay = replay
                self.active.append(seq)
                continue
            t0 = time.perf_counter()
            try:
                logits = self.engine.prefill(slot, prompt_suffix)
            except BaseException:
                # A crashing prefill must not leak the admission's slot
                # and reserved pages: the request is already popped, so
                # nothing else holds a handle that could release them.
                self.engine.release_slot(slot)
                raise
            self.report.prefill_seconds += time.perf_counter() - t0
            self.report.prefill_tokens += len(prompt_suffix)
            self._tick_prefill_tokens += len(prompt_suffix)
            if not self._finish_prompt(seq, logits, finished):
                continue
            if replay:
                self._replay_tokens(seq, replay)
            self.active.append(seq)
        if evicted:
            # Victims resume ahead of FIFO order -- but never ahead of a
            # head that is still blocked after the eviction, or the
            # (lower-priority) victim would queue-jump the very request
            # it was evicted for, ping-ponging forever.  Deadline mode
            # needs no hold: EDF rearbitrates the window every admission
            # regardless of queue position, and a victim that keeps
            # losing pages eventually sheds or finishes (preemption
            # chains strictly descend in priority).
            held = (
                self.queue.pop()
                if head_blocked and not deadline_mode else None
            )
            for request in reversed(evicted):
                self.queue.push_front(request)
            if held is not None:
                self.queue.push_front(held)

    def _finish_prompt(
        self, seq: _ActiveSequence, logits: np.ndarray,
        finished: List[Completion],
    ) -> bool:
        """Wrap up a completed prompt prefill; True if ``seq`` stays live.

        Registers the prompt for prefix sharing, samples the peak page
        gauges while prefill-claimed pages are still held (a sequence
        finishing right at admission would otherwise never be counted),
        and -- for a fresh sequence only -- samples the first token from
        the prefill logits.  A resumed sequence already emitted its
        first token before eviction; it is kept, never resampled.
        """
        self.engine.register_prefix(seq.slot, seq.request.prompt_ids)
        self._sample_page_peaks()
        if seq.generated_ids:
            return True
        first = int(self._sample_tokens([seq], logits[None, :])[0])
        return self._emit_token(seq, first, time.perf_counter(), finished)

    def _replay_tokens(self, seq: _ActiveSequence, tokens) -> None:
        """Re-feed already-emitted tokens through the *decode* path.

        Generated-position K/V is a product of the sparse decode
        executor; recomputing it with the dense prefill path would
        change the values themselves, not just their rounding, so a
        restored sequence replays its history token-by-token through
        ``decode_step`` -- the same op sequence that wrote the evicted
        state.  The logits are discarded: every replayed token was
        already emitted.
        """
        t0 = time.perf_counter()
        for tok in tokens:
            self.engine.decode_step([seq.slot], [int(tok)])
        self.report.replay_seconds += time.perf_counter() - t0
        self.report.replayed_tokens += len(tokens)
        self._tick_prefill_tokens += len(tokens)

    def _sample_page_peaks(self) -> None:
        """Refresh the arena high-water marks (paged cache only)."""
        if not self.report.n_pages:
            return
        self.report.peak_pages_in_use = max(
            self.report.peak_pages_in_use,
            self.engine.cache.n_pages_in_use,
        )
        self.report.peak_shared_pages = max(
            self.report.peak_shared_pages,
            self.engine.cache.n_shared_pages,
        )
        self._sample_cache_telemetry(tick=False)

    def _maybe_preempt(
        self, head: Request, evicted: List[Request]
    ) -> bool:
        """Evict one resident for ``head`` if allowed; True on eviction."""
        if not self.preemption:
            return False
        victim = self._pick_victim(head.priority)
        if victim is None:
            return False
        self._preempt(victim)
        evicted.append(victim.request)
        return True

    def _pick_victim(self, priority: int) -> Optional[_ActiveSequence]:
        """The lowest-priority resident strictly below ``priority``.

        Strict inequality is the anti-livelock rule: equal priorities
        never evict each other, so every preemption chain descends in
        priority and is finite.  Among equals the latest-admitted loses
        (it has the least sunk decode work to replay).

        Under ``admission="deadline"`` victim selection is
        deadline-aware: among the strictly-lower-priority residents the
        one with the *most* deadline slack (latest next-owed-token tick)
        loses -- evicting the most urgent resident would just convert
        one SLO miss into another.  Priority still gates who is
        evictable at all, so the anti-livelock rule is untouched.
        """
        victim = None
        if self.admission == "deadline":
            victim_rank = None
            for seq in self.active:
                if seq.request.priority >= priority:
                    continue
                rank = (self._resident_deadline(seq), -seq.request.priority)
                if victim is None or rank >= victim_rank:
                    victim, victim_rank = seq, rank
            return victim
        for seq in self.active:
            if seq.request.priority >= priority:
                continue
            if victim is None or \
                    seq.request.priority <= victim.request.priority:
                victim = seq
        return victim

    def _preempt(self, seq: _ActiveSequence) -> None:
        """Evict ``seq``: release its pages, remember its progress.

        Only the *prefilled prompt prefix* (``prompt_ids[:slot.length]``
        -- the whole prompt for a decoding resident, a prefix for one
        caught mid-restoration) is offered for parking: generated
        positions carry decode-path K/V that must never be shared or
        revived through prompt hashing.  The request itself goes back to
        the queue via the caller; emitted tokens and latency telemetry
        survive in ``_resume_state``.  The request's sampler RNG stream
        is deliberately **kept**: restoration replays recorded tokens
        without sampling, so on resume the stream sits exactly one draw
        past each emitted token -- eviction never changes what a seeded
        request generates.
        """
        self.active.remove(seq)
        parked = seq.request.prompt_ids[:seq.slot.length]
        self.engine.release_slot(seq.slot, parked_ids=parked)
        self._sample_cache_telemetry(tick=False)
        self._resume_state[seq.request.request_id] = {
            "generated": list(seq.generated_ids),
            "decode_steps": seq.decode_steps,
            "admitted_step": seq.admitted_step,
            "preemptions": seq.preemptions + 1,
            "first_token_step": seq.first_token_step,
            "emit_times": list(seq.emit_times),
            "emit_steps": list(seq.emit_steps),
            "spec_k": seq.spec_k,
            "spec_ema": seq.spec_ema,
        }
        self.report.preemptions += 1

    def _run_restoration(self, finished: List[Completion]) -> None:
        """Advance restoring sequences within the tick's token budget.

        The leftover budget after charging one token per decoding
        resident -- but always at least 1, so restoration cannot stall
        behind a large decode batch -- is spent oldest-admission-first
        on pending prefill chunks (prefill path) and then replay tokens
        (decode path).  A sequence whose prompt completes here samples
        its first token from the final chunk's logits and, once any
        replay drains, joins the same tick's decode batch.
        """
        if self.step_budget == 0:
            return
        if not any(seq.restoring for seq in self.active):
            return
        n_decoding = sum(1 for seq in self.active if not seq.restoring)
        budget = max(self.step_budget - n_decoding, 1)
        spent = 0
        for seq in list(self.active):
            if spent >= budget:
                break
            if seq.pending_prefill:
                take = min(len(seq.pending_prefill), budget - spent)
                piece = list(seq.pending_prefill[:take])
                seq.pending_prefill = seq.pending_prefill[take:]
                t0 = time.perf_counter()
                logits = self.engine.prefill(seq.slot, piece)
                self.report.prefill_seconds += time.perf_counter() - t0
                self.report.prefill_tokens += take
                self.report.piggybacked_chunks += 1
                self.report.piggybacked_tokens += take
                self._tick_prefill_tokens += take
                spent += take
                if seq.pending_prefill:
                    continue
                if not self._finish_prompt(seq, logits, finished):
                    self.active.remove(seq)
                    continue
            if seq.pending_replay and spent < budget:
                take = min(len(seq.pending_replay), budget - spent)
                self._replay_tokens(seq, seq.pending_replay[:take])
                seq.pending_replay = seq.pending_replay[take:]
                spent += take

    def _sample_cache_telemetry(self, tick: bool) -> None:
        """Refresh prefix-cache gauges; ``tick`` adds to per-step sums.

        Called at admission (pages may be parked/evicted by the prefill
        claims of the admission itself) and once per decode step.
        """
        if not self.report.cache_pages:
            return
        cached = self.engine.cache.n_cached_pages
        if tick:
            self.report.cached_pages_sum += cached
        self.report.peak_cached_pages = max(
            self.report.peak_cached_pages, cached
        )
        self.report.cache_evictions = (
            self.engine.prefix_cache.evictions - self._evictions_baseline
        )

    def step(self) -> List[Completion]:
        """One scheduler tick; returns the requests that finished in it."""
        self.step_count += 1
        self._tick_prefill_tokens = 0
        finished: List[Completion] = []
        self._admit(finished)
        self._run_restoration(finished)
        decoding = [seq for seq in self.active if not seq.restoring]
        self.report.peak_tick_prefill_tokens = max(
            self.report.peak_tick_prefill_tokens, self._tick_prefill_tokens
        )
        if not decoding:
            # Admission-only (or restoration-only) tick: the report's
            # skip telemetry must still be finalised -- every return
            # path refreshes it, not just the decode path.
            self._finalise_skip_telemetry()
            return finished

        # Partition the decode batch: sequences with draft budget run
        # the speculative draft/verify path; everything else takes the
        # plain batched decode step.  Comprehension-built, same
        # admission order as self.active.
        spec = self.speculation
        drafters = [
            seq for seq in decoding
            if spec is not None and self._spec_depth(seq) >= 1
        ]
        drafter_ids = {id(seq) for seq in drafters}
        plain = [seq for seq in decoding if id(seq) not in drafter_ids]

        t_emit = time.perf_counter()
        logits = None
        if plain:
            slots = [seq.slot for seq in plain]
            tokens = [seq.last_token for seq in plain]
            t0 = time.perf_counter()
            logits = self.engine.decode_step(slots, tokens)
            t_emit = time.perf_counter()
            self.report.decode_seconds += t_emit - t0
        self.report.decode_steps += 1
        self.report.occupancy_sum += len(decoding)
        self.report.peak_occupancy = max(
            self.report.peak_occupancy, len(decoding)
        )
        if self.report.n_pages:
            in_use = self.engine.cache.n_pages_in_use
            self.report.page_occupancy_sum += in_use
            self.report.peak_pages_in_use = max(
                self.report.peak_pages_in_use, in_use
            )
            shared = self.engine.cache.n_shared_pages
            self.report.shared_pages_sum += shared
            self.report.peak_shared_pages = max(
                self.report.peak_shared_pages, shared
            )
            self._sample_cache_telemetry(tick=True)

        if self.engine.batched_attention:
            attn = self.engine.attn_telemetry
            base = self._attn_baseline
            self.report.attn_batched_steps = attn.batched_steps - base[0]
            self.report.attn_buckets_sum = attn.buckets_sum - base[1]
            self.report.attn_useful_positions = \
                attn.useful_positions - base[2]
            self.report.attn_padded_positions = \
                attn.padded_positions - base[3]

        if plain:
            next_tokens = self._sample_tokens(plain, logits)
            self._commit_tokens(plain, next_tokens, t_emit, finished)
        if drafters:
            self._speculate(drafters, finished)
        self._finalise_skip_telemetry()
        return finished

    def _commit_tokens(
        self, seqs, next_tokens: np.ndarray, emit_time: float,
        finished: List[Completion],
    ) -> None:
        """Book-keep one decode tick's sampled tokens (no model compute).

        ``next_tokens[row]`` pairs with ``seqs[row]`` -- the same order
        :meth:`step` built the decode batch in.  The per-sequence loop
        here is pure O(1) bookkeeping (emit/stop/retire); the model
        compute (decode forward, batched sampling) already ran
        vectorised.  Finished sequences leave ``self.active``; the rest
        keep their seats and admission order.
        """
        for row, seq in enumerate(seqs):
            seq.decode_steps += 1
            if not self._emit_token(
                seq, int(next_tokens[row]), emit_time, finished
            ):
                self.active.remove(seq)

    def _spec_depth(self, seq: _ActiveSequence) -> int:
        """Draft steps ``seq`` may run this tick (0 = decode plainly).

        Capped by the sequence's adaptive depth and by its remaining
        token budget: drafting is only worth a verify pass when at
        least two tokens remain (one draft plus the bonus), and the
        deepest useful draft leaves the verify chunk's last fed
        position strictly inside the worst case reserved at admission
        (``prompt + max_new - 1`` positions), so speculation never
        outgrows the page reservation.
        """
        remaining = seq.request.max_new_tokens - len(seq.generated_ids)
        return max(0, min(seq.spec_k, remaining - 1))

    def _speculate(
        self, drafters: List[_ActiveSequence],
        finished: List[Completion],
    ) -> None:
        """Draft, verify, and commit speculative tokens for ``drafters``.

        Draft phase: up to ``spec_k`` cheap steps per sequence, batched
        across drafters depth by depth through the aggressive-alpha
        executor; each step's argmax extends that sequence's proposal
        (the draft's own logits are never sampled from).  The K/V those
        steps append is draft-quality, so each slot is rewound to its
        committed length before verification.

        Verify phase, per sequence: one chunked causal GEMM over
        ``[committed_token, draft_1, ..., draft_k]`` at the serving
        alpha yields the target logits after every position; targets
        are drawn through the normal per-request sampler stream (one
        draw per emitted token, same draw order as plain decode), and
        the longest draft prefix matching the targets is accepted plus
        the one corrected/bonus token.  The slot is truncated to cover
        exactly the emitted tokens, so rejected positions leave no
        trace.
        """
        spec = self.speculation
        engine = self.engine
        depths = [self._spec_depth(seq) for seq in drafters]
        bases = [seq.slot.length for seq in drafters]
        current = [seq.last_token for seq in drafters]
        drafts: List[list] = [[] for _ in drafters]
        t0 = time.perf_counter()
        for depth in range(max(depths)):
            rows = [i for i, d in enumerate(depths) if d > depth]
            logits = engine.draft_step(
                [drafters[i].slot for i in rows],
                [current[i] for i in rows],
                draft_alpha=spec.draft_alpha,
            )
            for j, i in enumerate(rows):
                tok = int(np.argmax(logits[j]))
                drafts[i].append(tok)
                current[i] = tok
        self.report.draft_seconds += time.perf_counter() - t0
        self.report.drafted_tokens += sum(depths)
        # repro: ignore[scalar-loop] -- ragged per-sequence verify chunks
        for i, seq in enumerate(drafters):
            k_eff = depths[i]
            base = bases[i]
            seq.slot.truncate(base)
            t0 = time.perf_counter()
            logits = engine.verify_chunk(
                seq.slot, [seq.last_token] + drafts[i]
            )
            t_emit = time.perf_counter()
            self.report.verify_seconds += t_emit - t0
            accepted = 0
            alive = True
            for pos in range(k_eff + 1):
                target = int(
                    self._sample_tokens([seq], logits[pos][None, :])[0]
                )
                is_match = pos < k_eff and target == drafts[i][pos]
                n_before = len(seq.generated_ids)
                alive = self._emit_token(seq, target, t_emit, finished)
                if len(seq.generated_ids) > n_before and is_match:
                    accepted += 1
                if not alive or not is_match:
                    break
            if alive:
                # Keep K/V only for tokens actually fed: the committed
                # token plus the accepted draft prefix.  A finished
                # sequence's slot was already released by _complete.
                seq.slot.truncate(base + accepted + 1)
            else:
                self.active.remove(seq)
            self.report.accepted_tokens += accepted
            seq.decode_steps += 1
            if spec.adaptive and k_eff:
                rate = accepted / k_eff
                seq.spec_ema = (
                    spec.ema_decay * seq.spec_ema
                    + (1.0 - spec.ema_decay) * rate
                )
                if seq.spec_ema >= spec.raise_threshold:
                    seq.spec_k = min(seq.spec_k + 1, spec.k)
                elif seq.spec_ema <= spec.lower_threshold:
                    seq.spec_k = max(seq.spec_k - 1, 1)

    def _finalise_skip_telemetry(self) -> None:
        """Fill the report's realised-vs-analytical skip fields.

        ``expected_uncorrelated_skip`` evaluates ``skip^B`` at the mean
        batch occupancy -- the ``correlation = 0`` curve of
        :func:`repro.gpu.batching.batch_skip_fraction` extended to the
        fractional ``B`` a drained workload realises -- so the realised
        intersection sitting *above* it is direct evidence of correlated
        (e.g. shared-prefix) co-scheduling.  Idempotent and cheap;
        refreshed after every :meth:`step` so callers driving the
        scheduler tick-by-tick see live values, not run()-only ones.
        """
        stats = self.engine.sparse.stats
        self.report.intersection_skip = stats.intersection_skip_fraction
        self.report.mean_sequence_skip = stats.mean_sequence_skip_fraction
        occupancy = self.report.mean_batch_occupancy
        if occupancy >= 1.0:
            self.report.expected_uncorrelated_skip = float(
                self.report.mean_sequence_skip ** occupancy
            )

    def run(self, max_steps: int = 1_000_000) -> ServeReport:
        """Tick until the queue and the batch are both empty."""
        steps = 0
        while not self.idle:
            self.step()
            steps += 1
            if steps >= max_steps and not self.idle:
                raise RuntimeError(
                    f"scheduler did not drain within {max_steps} steps"
                )
        self._finalise_skip_telemetry()
        return self.report

"""Continuous-batching scheduler over the batched decode engine.

Each scheduler tick:

1. retire sequences that finished last tick, freeing their KV slots;
2. admit queued requests (FIFO) into free slots -- admission prefills the
   prompt and samples the first token, exactly like the single-sequence
   ``generate`` loop samples from the prefill logits.  On a paged KV
   cache, admission additionally gates on the request's *worst-case*
   page demand (``ceil((prompt + max_new - 1) / page_size)`` pages must
   be reservable), so an admitted sequence can never starve for pages
   mid-decode; zero-token requests complete immediately without a slot
   or a prefill.  With prefix sharing the lookup order per admission is
   **resident-donor fork -> prefix-cache revive -> cold prefill**: a
   live donor's pages are forked copy-on-write, else (``cache_pages >
   0``) a retired prefix still cached is revived
   (:meth:`~repro.serving.engine.BatchedEngine.revive_slot`), else the
   whole prompt prefills cold.  Both shared paths charge only the
   unshared worst case -- cached pages count as reservable because the
   pool evicts them on demand;
3. run one batched decode step over all active sequences and sample each
   sequence's next token.

Sequences join and leave the batch at step granularity (continuous
batching): a finishing request never blocks on its batch-mates and a
pending request waits only until the next free slot.  FIFO admission
makes starvation impossible -- every retirement frees a slot and the
queue head is always admitted first.

**Correlation-aware admission.**  When the engine runs with
``prefix_sharing=True`` and the scheduler is given a ``reorder_window``
> 1, admission may prefer -- from the first ``reorder_window`` queued
requests -- one that shares a *live* prompt prefix with a resident
sequence over the FIFO head.  Such a request is admitted by forking the
donor's KV pages (cheaper: it is charged only its unshared worst case,
and its shared prefill is skipped) and keeps the decode batch's
activation sign patterns correlated, which slows the ``skip^B``
intersection decay (:func:`repro.gpu.batching.batch_skip_fraction` with
``correlation > 0``).  Starvation stays bounded: the head is bypassed at
most ``reorder_window - 1`` times before it must be the next admission,
so FIFO is the steady-state order.

The admission loop drains the queue by catching the typed
:class:`~repro.serving.queue.EmptyQueueError` only -- a bare
``IndexError`` escaping from admission bookkeeping is a bug and must
propagate, not read as "queue empty".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .engine import BatchedEngine
from .queue import EmptyQueueError, RequestQueue
from .request import Completion, Request


@dataclass
class _ActiveSequence:
    """Scheduler-side state of one admitted, unfinished request."""

    request: Request
    slot: object                       # KVSlot
    generated_ids: list
    admitted_step: int
    decode_steps: int = 0

    @property
    def last_token(self) -> int:
        return self.generated_ids[-1]

    def wants_more(self) -> bool:
        return len(self.generated_ids) < self.request.max_new_tokens


@dataclass
class ServeReport:
    """Outcome and telemetry of draining a workload.

    The ``page_*`` fields are populated only when the engine runs a
    paged KV cache (``n_pages > 0``): ``page_occupancy_sum`` sums the
    arena pages in use at each decode tick, so
    :attr:`mean_page_occupancy` / :attr:`mean_page_utilisation` say how
    full the shared page budget actually ran, and
    ``peak_pages_in_use`` bounds the budget a replay would need.

    Prefix-sharing telemetry: ``forked_admissions`` counts requests
    admitted by forking a resident donor, ``prefill_tokens_saved`` sums
    the shared positions whose prefill those forks skipped, and the
    ``shared_pages`` fields track physical pages mapped by more than one
    sequence.

    Prefix-cache telemetry (engine runs ``cache_pages > 0``):
    ``revived_admissions`` counts admissions served by re-pinning
    retired prefix pages, ``revived_tokens`` sums the prompt positions
    those revives did not re-prefill, ``cache_evictions`` counts cached
    pages reclaimed (LRU budget or on-demand by the allocator), and the
    ``cached_pages`` fields track how much of the cache budget actually
    held pages per tick.  ``intersection_skip`` is the realised cross-sequence skip
    fraction at weight-read granularity; ``expected_uncorrelated_skip``
    is the analytical ``skip^B`` decay it would have suffered with
    independent sequences (``B`` = mean batch occupancy, the
    ``correlation = 0`` curve of
    :func:`repro.gpu.batching.batch_skip_fraction`), so their gap is the
    sparsity that correlation-aware batching retained.
    """

    completions: List[Completion] = field(default_factory=list)
    decode_steps: int = 0
    tokens_generated: int = 0
    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    occupancy_sum: int = 0             # sum of batch sizes over decode steps
    peak_occupancy: int = 0            # largest decode batch observed
    n_pages: int = 0                   # page budget (0 = fixed-slot cache)
    page_occupancy_sum: int = 0        # sum of pages in use over decode steps
    peak_pages_in_use: int = 0
    forked_admissions: int = 0         # admissions served by a KV fork
    prefill_tokens_saved: int = 0      # prompt positions reused, not re-run
    shared_pages_sum: int = 0          # sum of shared pages over decode steps
    peak_shared_pages: int = 0
    cache_pages: int = 0               # prefix-cache budget (0 = disabled)
    revived_admissions: int = 0        # admissions served from the cache
    revived_tokens: int = 0            # prompt positions revived, not re-run
    cache_evictions: int = 0           # cached pages reclaimed (LRU/demand)
    cached_pages_sum: int = 0          # sum of cached pages over decode steps
    peak_cached_pages: int = 0
    intersection_skip: float = 0.0     # realised cross-sequence skip
    mean_sequence_skip: float = 0.0    # per-sequence (batch=1) ceiling
    expected_uncorrelated_skip: float = 0.0   # skip^B at mean occupancy
    # Batched-attention telemetry (engine runs batched_attention=True):
    # padded vs useful K/V cells gathered and length-bucket counts, so
    # the padding the length masks threw away is visible per run.
    attn_batched_steps: int = 0        # decode steps on the batched path
    attn_buckets_sum: int = 0          # length buckets over those steps
    attn_useful_positions: int = 0     # gathered cells inside a length
    attn_padded_positions: int = 0     # all gathered cells incl. padding

    @property
    def wall_seconds(self) -> float:
        return self.prefill_seconds + self.decode_seconds

    @property
    def mean_batch_occupancy(self) -> float:
        return self.occupancy_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def mean_page_occupancy(self) -> float:
        """Mean arena pages in use per decode tick (paged cache only)."""
        return self.page_occupancy_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def mean_page_utilisation(self) -> float:
        """Mean fraction of the page budget in use (paged cache only)."""
        return self.mean_page_occupancy / self.n_pages if self.n_pages else 0.0

    @property
    def mean_shared_pages(self) -> float:
        """Mean pages mapped by >1 sequence per decode tick."""
        return self.shared_pages_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def total_prompt_tokens(self) -> int:
        """Prompt positions across all admissions, however served."""
        return (self.prefill_tokens + self.prefill_tokens_saved
                + self.revived_tokens)

    @property
    def prefill_sharing_fraction(self) -> float:
        """Fraction of prompt positions served from a resident fork."""
        total = self.total_prompt_tokens
        return self.prefill_tokens_saved / total if total else 0.0

    @property
    def prefill_cache_fraction(self) -> float:
        """Fraction of prompt positions revived from the prefix cache."""
        total = self.total_prompt_tokens
        return self.revived_tokens / total if total else 0.0

    @property
    def prefill_reuse_fraction(self) -> float:
        """Fraction of prompt positions not re-prefilled (fork + revive)."""
        total = self.total_prompt_tokens
        saved = self.prefill_tokens_saved + self.revived_tokens
        return saved / total if total else 0.0

    @property
    def mean_cached_pages(self) -> float:
        """Mean prefix-cache pages held per decode tick."""
        return self.cached_pages_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def skip_retained_vs_uncorrelated(self) -> float:
        """Realised intersection skip minus the independent ``skip^B``."""
        return self.intersection_skip - self.expected_uncorrelated_skip

    def _attn_telemetry(self):
        """This run's counters as an AttentionTelemetry (one source of
        truth for the derived fractions)."""
        from ..model.batch_attention import AttentionTelemetry

        return AttentionTelemetry(
            batched_steps=self.attn_batched_steps,
            buckets_sum=self.attn_buckets_sum,
            useful_positions=self.attn_useful_positions,
            padded_positions=self.attn_padded_positions,
        )

    @property
    def attn_padding_waste(self) -> float:
        """Fraction of gathered K/V cells that were padding."""
        return self._attn_telemetry().padding_waste_fraction

    @property
    def mean_attn_buckets(self) -> float:
        """Mean length buckets per batched-attention decode step."""
        return self._attn_telemetry().mean_buckets_per_step

    @property
    def decode_tokens_per_second(self) -> float:
        return self.tokens_generated / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def tokens_per_second(self) -> float:
        """End-to-end throughput including prefill time."""
        return self.tokens_generated / self.wall_seconds if self.wall_seconds else 0.0


class ContinuousBatchingScheduler:
    """Drains a request queue through a :class:`BatchedEngine`.

    ``reorder_window`` enables correlation-aware admission (see module
    docstring): values <= 1 mean strict FIFO; a window of ``w`` lets a
    request sharing a live prefix jump at most ``w - 1`` positions, and
    the head is never bypassed more than ``w - 1`` admissions in a row.
    """

    def __init__(
        self,
        engine: BatchedEngine,
        queue: Optional[RequestQueue] = None,
        max_batch_size: Optional[int] = None,
        reorder_window: int = 0,
    ):
        if reorder_window < 0:
            raise ValueError(
                f"reorder_window must be >= 0, got {reorder_window}"
            )
        self.engine = engine
        self.queue = queue if queue is not None else RequestQueue()
        self.max_batch_size = min(
            max_batch_size or engine.max_batch_size, engine.max_batch_size
        )
        self.reorder_window = reorder_window
        self.active: List[_ActiveSequence] = []
        self.step_count = 0
        self._head_skips = 0       # consecutive admissions that bypassed head
        self.report = ServeReport(
            n_pages=getattr(engine.cache, "n_pages", 0),
            cache_pages=getattr(engine, "cache_pages", 0),
        )
        # The prefix cache's eviction counter is cumulative across the
        # engine's lifetime; snapshot it so a reused engine still yields
        # per-run telemetry.
        prefix_cache = getattr(engine, "prefix_cache", None)
        self._evictions_baseline = (
            prefix_cache.evictions if prefix_cache is not None else 0
        )
        # Engine attention counters are cumulative across its lifetime;
        # snapshot them so a reused (or pre-warmed) engine still yields
        # per-run telemetry, like every other ServeReport counter.
        attn = engine.attn_telemetry
        self._attn_baseline = (
            attn.batched_steps, attn.buckets_sum,
            attn.useful_positions, attn.padded_positions,
        )

    @staticmethod
    def _worst_case_positions(request: Request) -> int:
        """KV positions the request could feed its slot.

        A sequence feeds ``prompt_len + max_new_tokens - 1`` tokens (the
        final sampled token is never fed back).  Zero-token requests
        never prefill (they complete empty at admission), so they need
        no KV at all -- whatever their prompt length.
        """
        if request.max_new_tokens == 0:
            return 0
        return request.prompt_len + request.max_new_tokens - 1

    def _capacity_error(self, request: Request) -> Optional[str]:
        """Why ``request`` can never fit the KV cache, or None if it can.

        Checks against :attr:`max_request_positions` -- the per-slot cap
        for the fixed cache, and additionally the whole page budget for a
        paged cache (a request bigger than the entire arena could never
        be admitted no matter how empty the system is).
        """
        needed = self._worst_case_positions(request)
        capacity = self.engine.cache.max_request_positions
        if needed <= capacity:
            return None
        return (
            f"request {request.request_id} needs up to {needed} KV "
            f"positions but slots hold {capacity}; shorten the prompt "
            f"or max_new_tokens, or raise the engine's max_seq_len"
        )

    def submit(self, request: Request) -> None:
        """Queue a request, rejecting oversized ones up front.

        Admission re-checks capacity (the queue is injectable), but
        failing fast here gives the caller the error as an exception
        instead of an errored :class:`Completion`.
        """
        reason = self._capacity_error(request)
        if reason is not None:
            raise ValueError(reason)
        self.queue.submit(request)

    @property
    def n_pending(self) -> int:
        return len(self.queue)

    @property
    def idle(self) -> bool:
        return not self.active and not self.queue

    # -- one tick ----------------------------------------------------------

    def _greedy(self, logits: np.ndarray) -> int:
        return int(np.argmax(logits))

    def _complete(self, seq: _ActiveSequence) -> Completion:
        self.engine.release_slot(seq.slot)
        # Retirement is the moment pages get parked; sample here so the
        # cached-page peak sees a burst's tail, not just decode ticks.
        self._sample_cache_telemetry(tick=False)
        completion = Completion(
            request=seq.request,
            generated_ids=list(seq.generated_ids),
            admitted_step=seq.admitted_step,
            finished_step=self.step_count,
            decode_steps=seq.decode_steps,
        )
        self.report.completions.append(completion)
        return completion

    def _admission_plan(self, request: Request) -> tuple:
        """``(donor, shared, pages, needed, fits)`` for admitting ``request``.

        The lookup cascade is resident-donor fork -> prefix-cache revive
        -> cold prefill: a live donor's pages are cheapest (no pinning,
        shareable past page alignment), a cached chain still skips its
        prefill, and a plain worst-case allocation is the fallback.
        ``shared`` is the positions the chosen path skips (donor-shared
        for a fork, chain length for a revive); ``pages`` is the cached
        chain to revive or None.
        """
        needed = self._worst_case_positions(request)
        if self.engine.prefix_sharing:
            donor, shared = self.engine.find_prefix_donor(request.prompt_ids)
            if donor is not None and \
                    self.engine.can_fork(donor, shared, needed):
                return donor, shared, None, needed, True
            pages, revived = self.engine.find_cached_prefix(
                request.prompt_ids
            )
            if pages and self.engine.can_revive(pages, needed):
                return None, revived, pages, needed, True
        return None, 0, None, needed, self.engine.can_admit(needed)

    def _choose_admission(self, head: Request) -> Optional[tuple]:
        """The next admission: the head, or a bounded-window jump.

        Returns ``(queue_index, request, donor, shared, pages, needed)``
        or ``None`` when nothing can be admitted this tick.  A request
        later in the window is chosen only when it shares a live prefix
        *longer* than whatever the head's plan already skips (fork or
        revive), its fork fits, and the head has not yet been bypassed
        ``reorder_window - 1`` times in a row -- after that the head is
        guaranteed to be the next admission, bounding starvation.
        Window jumps stay donor-based: their point is co-scheduling
        correlated sign patterns with a *live* sharer, which a cached
        (retired) prefix cannot offer.
        """
        donor, shared, pages, needed, fits = self._admission_plan(head)
        best = (0, head, donor, shared, pages, needed) if fits else None
        best_shared = shared if fits else 0
        if self.reorder_window > 1 and self.engine.prefix_sharing and \
                self._head_skips < self.reorder_window - 1:
            for i, request in enumerate(self.queue.window(self.reorder_window)):
                if i == 0:
                    continue
                if request.max_new_tokens == 0 or \
                        self._capacity_error(request) is not None:
                    continue   # handled (cheaply) when it reaches the head
                c_needed = self._worst_case_positions(request)
                c_donor, c_shared = self.engine.find_prefix_donor(
                    request.prompt_ids
                )
                if c_donor is None or c_shared <= best_shared:
                    continue
                if not self.engine.can_fork(c_donor, c_shared, c_needed):
                    continue
                best = (i, request, c_donor, c_shared, None, c_needed)
                best_shared = c_shared
        return best

    def _admit(self, finished: List[Completion]) -> None:
        while True:
            try:
                head = self.queue.peek()
            except EmptyQueueError:
                break
            reason = self._capacity_error(head)
            if reason is not None:
                # Queued without going through submit(); reject instead
                # of letting KVSlot.append blow up the whole batch.
                # Rejection consumes no slot, so a full batch never
                # delays it.
                self.queue.pop()
                self._head_skips = 0
                completion = Completion(
                    request=head, generated_ids=[],
                    admitted_step=self.step_count,
                    finished_step=self.step_count, error=reason,
                )
                self.report.completions.append(completion)
                finished.append(completion)
                continue
            if head.max_new_tokens == 0:
                # Nothing to decode: complete empty without burning a KV
                # slot, a decode-batch seat, or a prefill the output can
                # never use.
                self.queue.pop()
                self._head_skips = 0
                completion = Completion(
                    request=head, generated_ids=[],
                    admitted_step=self.step_count,
                    finished_step=self.step_count,
                )
                self.report.completions.append(completion)
                finished.append(completion)
                continue
            if len(self.active) >= self.max_batch_size:
                break
            choice = self._choose_admission(head)
            if choice is None:
                # The head waits for a seat and slots/pages, and no
                # in-window prefix-sharer can take its place.
                break
            index, request, donor, shared, pages, needed = choice
            self.queue.pop_at(index)
            if index == 0:
                self._head_skips = 0
            else:
                self._head_skips += 1
            if donor is not None:
                # Fork: shared prefix K/V comes from the donor's pages;
                # only the unshared suffix is prefilled and only the
                # unshared worst case is reserved.
                slot = self.engine.fork_slot(donor, shared, needed)
                prompt_suffix = request.prompt_ids[shared:]
                self.report.forked_admissions += 1
                self.report.prefill_tokens_saved += shared
            elif pages:
                # Revive: the prefix K/V is re-pinned from the cross-
                # request cache -- same prefill saving as a fork, but
                # the donor retired long ago.
                slot = self.engine.revive_slot(pages, needed)
                prompt_suffix = request.prompt_ids[shared:]
                self.report.revived_admissions += 1
                self.report.revived_tokens += shared
            else:
                slot = self.engine.allocate_slot(needed)
                prompt_suffix = request.prompt_ids
            seq = _ActiveSequence(
                request=request, slot=slot, generated_ids=[],
                admitted_step=self.step_count,
            )
            t0 = time.perf_counter()
            logits = self.engine.prefill(slot, prompt_suffix)
            self.report.prefill_seconds += time.perf_counter() - t0
            self.report.prefill_tokens += len(prompt_suffix)
            self.engine.register_prefix(slot, request.prompt_ids)
            if self.report.n_pages:
                # Sample the arena high-water mark while prefill-claimed
                # pages are still held -- a sequence finishing right at
                # admission would otherwise never be counted.
                self.report.peak_pages_in_use = max(
                    self.report.peak_pages_in_use,
                    self.engine.cache.n_pages_in_use,
                )
                self.report.peak_shared_pages = max(
                    self.report.peak_shared_pages,
                    self.engine.cache.n_shared_pages,
                )
                self._sample_cache_telemetry(tick=False)
            first = self._greedy(logits)
            if request.stop_ids and first in request.stop_ids:
                finished.append(self._complete(seq))
                continue
            seq.generated_ids.append(first)
            self.report.tokens_generated += 1
            if seq.wants_more():
                self.active.append(seq)
            else:
                finished.append(self._complete(seq))

    def _sample_cache_telemetry(self, tick: bool) -> None:
        """Refresh prefix-cache gauges; ``tick`` adds to per-step sums.

        Called at admission (pages may be parked/evicted by the prefill
        claims of the admission itself) and once per decode step.
        """
        if not self.report.cache_pages:
            return
        cached = self.engine.cache.n_cached_pages
        if tick:
            self.report.cached_pages_sum += cached
        self.report.peak_cached_pages = max(
            self.report.peak_cached_pages, cached
        )
        self.report.cache_evictions = (
            self.engine.prefix_cache.evictions - self._evictions_baseline
        )

    def step(self) -> List[Completion]:
        """One scheduler tick; returns the requests that finished in it."""
        self.step_count += 1
        finished: List[Completion] = []
        self._admit(finished)
        if not self.active:
            return finished

        slots = [seq.slot for seq in self.active]
        tokens = [seq.last_token for seq in self.active]
        t0 = time.perf_counter()
        logits = self.engine.decode_step(slots, tokens)
        self.report.decode_seconds += time.perf_counter() - t0
        self.report.decode_steps += 1
        self.report.occupancy_sum += len(self.active)
        self.report.peak_occupancy = max(
            self.report.peak_occupancy, len(self.active)
        )
        if self.report.n_pages:
            in_use = self.engine.cache.n_pages_in_use
            self.report.page_occupancy_sum += in_use
            self.report.peak_pages_in_use = max(
                self.report.peak_pages_in_use, in_use
            )
            shared = self.engine.cache.n_shared_pages
            self.report.shared_pages_sum += shared
            self.report.peak_shared_pages = max(
                self.report.peak_shared_pages, shared
            )
            self._sample_cache_telemetry(tick=True)

        if self.engine.batched_attention:
            attn = self.engine.attn_telemetry
            base = self._attn_baseline
            self.report.attn_batched_steps = attn.batched_steps - base[0]
            self.report.attn_buckets_sum = attn.buckets_sum - base[1]
            self.report.attn_useful_positions = \
                attn.useful_positions - base[2]
            self.report.attn_padded_positions = \
                attn.padded_positions - base[3]

        still_active: List[_ActiveSequence] = []
        for i, seq in enumerate(self.active):
            seq.decode_steps += 1
            nxt = self._greedy(logits[i])
            stop = seq.request.stop_ids
            if stop and nxt in stop:
                finished.append(self._complete(seq))
                continue
            seq.generated_ids.append(nxt)
            self.report.tokens_generated += 1
            if seq.wants_more():
                still_active.append(seq)
            else:
                finished.append(self._complete(seq))
        self.active = still_active
        self._finalise_skip_telemetry()
        return finished

    def _finalise_skip_telemetry(self) -> None:
        """Fill the report's realised-vs-analytical skip fields.

        ``expected_uncorrelated_skip`` evaluates ``skip^B`` at the mean
        batch occupancy -- the ``correlation = 0`` curve of
        :func:`repro.gpu.batching.batch_skip_fraction` extended to the
        fractional ``B`` a drained workload realises -- so the realised
        intersection sitting *above* it is direct evidence of correlated
        (e.g. shared-prefix) co-scheduling.  Idempotent and cheap;
        refreshed after every :meth:`step` so callers driving the
        scheduler tick-by-tick see live values, not run()-only ones.
        """
        stats = self.engine.sparse.stats
        self.report.intersection_skip = stats.intersection_skip_fraction
        self.report.mean_sequence_skip = stats.mean_sequence_skip_fraction
        occupancy = self.report.mean_batch_occupancy
        if occupancy >= 1.0:
            self.report.expected_uncorrelated_skip = float(
                self.report.mean_sequence_skip ** occupancy
            )

    def run(self, max_steps: int = 1_000_000) -> ServeReport:
        """Tick until the queue and the batch are both empty."""
        steps = 0
        while not self.idle:
            self.step()
            steps += 1
            if steps >= max_steps and not self.idle:
                raise RuntimeError(
                    f"scheduler did not drain within {max_steps} steps"
                )
        self._finalise_skip_telemetry()
        return self.report

"""Continuous-batching scheduler over the batched decode engine.

Each scheduler tick:

1. retire sequences that finished last tick, freeing their KV slots;
2. admit queued requests (FIFO) into free slots -- admission prefills the
   prompt and samples the first token, exactly like the single-sequence
   ``generate`` loop samples from the prefill logits;
3. run one batched decode step over all active sequences and sample each
   sequence's next token.

Sequences join and leave the batch at step granularity (continuous
batching): a finishing request never blocks on its batch-mates and a
pending request waits only until the next free slot.  FIFO admission
makes starvation impossible -- every retirement frees a slot and the
queue head is always admitted first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .engine import BatchedEngine
from .queue import RequestQueue
from .request import Completion, Request


@dataclass
class _ActiveSequence:
    """Scheduler-side state of one admitted, unfinished request."""

    request: Request
    slot: object                       # KVSlot
    generated_ids: list
    admitted_step: int
    decode_steps: int = 0

    @property
    def last_token(self) -> int:
        return self.generated_ids[-1]

    def wants_more(self) -> bool:
        return len(self.generated_ids) < self.request.max_new_tokens


@dataclass
class ServeReport:
    """Outcome and telemetry of draining a workload."""

    completions: List[Completion] = field(default_factory=list)
    decode_steps: int = 0
    tokens_generated: int = 0
    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    occupancy_sum: int = 0             # sum of batch sizes over decode steps

    @property
    def wall_seconds(self) -> float:
        return self.prefill_seconds + self.decode_seconds

    @property
    def mean_batch_occupancy(self) -> float:
        return self.occupancy_sum / self.decode_steps if self.decode_steps else 0.0

    @property
    def decode_tokens_per_second(self) -> float:
        return self.tokens_generated / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def tokens_per_second(self) -> float:
        """End-to-end throughput including prefill time."""
        return self.tokens_generated / self.wall_seconds if self.wall_seconds else 0.0


class ContinuousBatchingScheduler:
    """Drains a request queue through a :class:`BatchedEngine`."""

    def __init__(
        self,
        engine: BatchedEngine,
        queue: Optional[RequestQueue] = None,
        max_batch_size: Optional[int] = None,
    ):
        self.engine = engine
        self.queue = queue if queue is not None else RequestQueue()
        self.max_batch_size = min(
            max_batch_size or engine.max_batch_size, engine.max_batch_size
        )
        self.active: List[_ActiveSequence] = []
        self.step_count = 0
        self.report = ServeReport()

    def _capacity_error(self, request: Request) -> Optional[str]:
        """Why ``request`` can never fit a KV slot, or None if it fits.

        A sequence feeds ``prompt_len + max_new_tokens - 1`` tokens into
        its slot (the final sampled token is never fed back).
        """
        needed = request.prompt_len + max(0, request.max_new_tokens - 1)
        capacity = self.engine.cache.max_seq_len
        if needed <= capacity:
            return None
        return (
            f"request {request.request_id} needs up to {needed} KV "
            f"positions but slots hold {capacity}; shorten the prompt "
            f"or max_new_tokens, or raise the engine's max_seq_len"
        )

    def submit(self, request: Request) -> None:
        """Queue a request, rejecting oversized ones up front.

        Admission re-checks capacity (the queue is injectable), but
        failing fast here gives the caller the error as an exception
        instead of an errored :class:`Completion`.
        """
        reason = self._capacity_error(request)
        if reason is not None:
            raise ValueError(reason)
        self.queue.submit(request)

    @property
    def n_pending(self) -> int:
        return len(self.queue)

    @property
    def idle(self) -> bool:
        return not self.active and not self.queue

    # -- one tick ----------------------------------------------------------

    def _greedy(self, logits: np.ndarray) -> int:
        return int(np.argmax(logits))

    def _complete(self, seq: _ActiveSequence) -> Completion:
        self.engine.release_slot(seq.slot)
        completion = Completion(
            request=seq.request,
            generated_ids=list(seq.generated_ids),
            admitted_step=seq.admitted_step,
            finished_step=self.step_count,
            decode_steps=seq.decode_steps,
        )
        self.report.completions.append(completion)
        return completion

    def _admit(self, finished: List[Completion]) -> None:
        while self.queue and len(self.active) < self.max_batch_size \
                and self.engine.n_free_slots:
            request = self.queue.pop()
            reason = self._capacity_error(request)
            if reason is not None:
                # Queued without going through submit(); reject instead
                # of letting KVSlot.append blow up the whole batch.
                completion = Completion(
                    request=request, generated_ids=[],
                    admitted_step=self.step_count,
                    finished_step=self.step_count, error=reason,
                )
                self.report.completions.append(completion)
                finished.append(completion)
                continue
            slot = self.engine.allocate_slot()
            seq = _ActiveSequence(
                request=request, slot=slot, generated_ids=[],
                admitted_step=self.step_count,
            )
            t0 = time.perf_counter()
            logits = self.engine.prefill(slot, request.prompt_ids)
            self.report.prefill_seconds += time.perf_counter() - t0
            self.report.prefill_tokens += request.prompt_len
            if request.max_new_tokens == 0:
                finished.append(self._complete(seq))
                continue
            first = self._greedy(logits)
            if request.stop_ids and first in request.stop_ids:
                finished.append(self._complete(seq))
                continue
            seq.generated_ids.append(first)
            self.report.tokens_generated += 1
            if seq.wants_more():
                self.active.append(seq)
            else:
                finished.append(self._complete(seq))

    def step(self) -> List[Completion]:
        """One scheduler tick; returns the requests that finished in it."""
        self.step_count += 1
        finished: List[Completion] = []
        self._admit(finished)
        if not self.active:
            return finished

        slots = [seq.slot for seq in self.active]
        tokens = [seq.last_token for seq in self.active]
        t0 = time.perf_counter()
        logits = self.engine.decode_step(slots, tokens)
        self.report.decode_seconds += time.perf_counter() - t0
        self.report.decode_steps += 1
        self.report.occupancy_sum += len(self.active)

        still_active: List[_ActiveSequence] = []
        for i, seq in enumerate(self.active):
            seq.decode_steps += 1
            nxt = self._greedy(logits[i])
            stop = seq.request.stop_ids
            if stop and nxt in stop:
                finished.append(self._complete(seq))
                continue
            seq.generated_ids.append(nxt)
            self.report.tokens_generated += 1
            if seq.wants_more():
                still_active.append(seq)
            else:
                finished.append(self._complete(seq))
        self.active = still_active
        return finished

    def run(self, max_steps: int = 1_000_000) -> ServeReport:
        """Tick until the queue and the batch are both empty."""
        steps = 0
        while not self.idle:
            self.step()
            steps += 1
            if steps >= max_steps and not self.idle:
                raise RuntimeError(
                    f"scheduler did not drain within {max_steps} steps"
                )
        return self.report

"""Batched sparse-decode serving: queue, scheduler, and batched engine.

The paper evaluates SparseInfer at decode batch 1, where every gate row a
sequence predicts sparse saves its whole weight read.  A serving system
decodes many sequences per step, and a row's weights can only go unread
when **every** co-scheduled sequence predicts it sparse -- the exploitable
skip set is the *intersection* across the batch, which for independent
sequences decays roughly as ``skip^B`` (:mod:`repro.gpu.batching` models
this decay analytically; :func:`repro.gpu.batching.batch_skip_fraction`
is the curve the serving benchmark plots measured intersections against).

What batching loses in sparsity it repays in weight-read amortisation:
the rows that *are* computed are computed for the whole batch from a
single weight read, so throughput still rises with batch size -- the
classic serving-vs-edge trade-off (DejaVu targets the batched regime with
trained predictors, PowerInfer the edge regime; SparseInfer's
training-free predictor is cheap enough to run per step in either).

Pieces:

* :mod:`repro.serving.request`  -- :class:`Request` / :class:`Completion`.
* :mod:`repro.serving.queue`    -- FIFO admission queue.
* :mod:`repro.serving.batch_mlp` -- batch-aware sparse MLP executor: one
  sign-pack + popcount pass predicts all sequences, rows outside the
  intersection run as a batched GEMM, and per-sequence masks re-zero rows
  a sequence predicted sparse so outputs match single-sequence decode.
* :mod:`repro.serving.engine`   -- :class:`BatchedEngine` over per-request
  KV slots: fixed arrays (:class:`repro.model.kvcache.BatchedKVCache`)
  or, with ``paged=True``, a shared page arena
  (:class:`repro.model.paged_kvcache.PagedKVCache`) where short requests
  hold only the pages they touch and admission is gated on worst-case
  page demand.
* :mod:`repro.model.sampler` (re-exported here) -- per-request decode
  modes: :class:`Request.sampling` carries a
  :class:`~repro.model.sampler.SamplerConfig` and each decode tick
  samples the whole batch in one vectorised
  :class:`~repro.model.sampler.BatchedSampler` call, stochastic rows
  drawing from per-request RNG streams keyed by ``(seed, request_id)``
  so tokens reproduce regardless of batch composition or preemption.
* :mod:`repro.serving.scheduler` -- continuous batching: admit from the
  queue the moment a slot (and, when paged, its pages) frees, retire
  finished sequences, never starve.  With ``prefix_sharing=True`` on the
  engine and a ``reorder_window`` on the scheduler, admission prefers
  queued requests sharing a live prompt prefix: they are forked onto the
  donor's refcounted KV pages (copy-on-write, charged only their
  unshared worst case), skip the shared prefill, and keep the decode
  batch's sign patterns correlated so the intersection decays slower
  than the independent ``skip^B``.  ``cache_pages > 0`` extends sharing
  across non-overlapping lifetimes: retired prompt prefixes are parked
  in an LRU :class:`~repro.model.paged_kvcache.PrefixCache` and revived
  by later admissions (lookup order: resident fork -> cache revive ->
  cold prefill).
* :mod:`repro.serving.speculative` -- :class:`SpecConfig`: speculative
  self-drafting (``speculation=...`` on engine and scheduler).  The
  sparse path at an aggressive alpha drafts ``k`` tokens per tick, one
  chunked causal GEMM verifies ``k + 1`` positions at the serving
  alpha, rejected draft K/V is rolled back with ``truncate`` -- output
  stays token-identical to non-speculative serving by construction.
* :mod:`repro.serving.loadgen` -- deterministic seeded traffic:
  arrival processes (:class:`PoissonProcess`, bursty
  :class:`OnOffProcess`, :class:`DiurnalProcess`) feed a
  :class:`LoadGenerator` whose timed traces :func:`run_trace` replays
  against the scheduler on a virtual tick clock.  Requests carry SLO
  contracts (:class:`SLOSpec` on :class:`Request`); the scheduler's
  ``admission="deadline"`` mode admits earliest-deadline-first, sheds
  hopeless requests, and the :class:`ServeReport` accounts goodput
  (SLO-met tokens) per traffic class.

``docs/serving.md`` walks the whole pipeline and tabulates every engine
knob and every ``ServeReport`` telemetry field.
"""

from ..model.sampler import BatchedSampler, Sampler, SamplerConfig
from .batch_mlp import BatchedMLPStats, BatchedSparseInferMLP
from .engine import BatchedEngine, PrefixIndex
from .loadgen import (
    DiurnalProcess,
    LoadGenerator,
    OnOffProcess,
    PoissonProcess,
    TimedRequest,
    run_trace,
)
from .queue import EmptyQueueError, RequestQueue
from .request import Completion, Request, SLOSpec
from .scheduler import ContinuousBatchingScheduler, ServeReport
from .speculative import SpecConfig

__all__ = [
    "BatchedEngine",
    "BatchedMLPStats",
    "BatchedSampler",
    "BatchedSparseInferMLP",
    "Completion",
    "ContinuousBatchingScheduler",
    "DiurnalProcess",
    "EmptyQueueError",
    "LoadGenerator",
    "OnOffProcess",
    "PoissonProcess",
    "PrefixIndex",
    "Request",
    "RequestQueue",
    "Sampler",
    "SamplerConfig",
    "ServeReport",
    "SLOSpec",
    "SpecConfig",
    "TimedRequest",
    "run_trace",
]

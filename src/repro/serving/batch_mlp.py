"""Batch-aware SparseInfer MLP executor.

Per decode step and layer this executor runs the predictor **once** for
the whole batch (one sign-pack of the ``(B, d)`` inputs, one broadcast
XOR+popcount against the packed gate signs), then:

1. takes the intersection of the per-sequence skip masks -- only rows
   every sequence predicts sparse can skip their weight read;
2. runs gate/up/down as batched GEMMs over the surviving rows, reading
   each surviving row's weights once for the whole batch;
3. re-zeroes, per sequence, the rows that sequence predicted sparse, so
   each sequence's output equals what single-sequence decode produces;
4. (+AS) drops rows whose gated activation came out zero for *every*
   sequence from the up/down reads -- the batch-level version of the
   paper's actual-sparsity tightening.

A batch of one bypasses the GEMM path and executes the exact
single-sequence op sequence (:meth:`SparseInferMLP.run_with_skip`), which
keeps batch=1 serving bit-identical to :func:`repro.core.engine.build_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.predictor import SparseInferPredictor
from ..core.sparse_mlp import SparseInferMLP
from ..model.weights import ModelWeights


@dataclass
class BatchedMLPStats:
    """Weight-read accounting across batched executor calls.

    ``rows_total`` counts gate rows per (layer, step) call -- weight-read
    granularity, not per-sequence granularity -- so
    ``1 - rows_read_gate / rows_total`` is the realised intersection skip
    fraction, directly comparable to the analytical ``skip^B`` curve of
    :func:`repro.gpu.batching.batch_skip_fraction`.
    """

    calls: int = 0
    sequences: int = 0           # sum of batch sizes over calls
    rows_total: int = 0          # k per call
    rows_read_gate: int = 0      # rows outside the batch intersection
    predicted_skip_seq: float = 0.0   # sum of per-sequence skip fractions

    @property
    def intersection_skip_fraction(self) -> float:
        """Fraction of weight rows the whole batch skipped reading."""
        if not self.rows_total:
            return 0.0
        return 1.0 - self.rows_read_gate / self.rows_total

    @property
    def mean_sequence_skip_fraction(self) -> float:
        """Mean single-sequence predicted skip (the batch=1 ceiling)."""
        return self.predicted_skip_seq / self.sequences if self.sequences else 0.0


@dataclass
class BatchedSparseInferMLP:
    """SparseInfer MLP over a batch of sequences' inputs.

    Wraps a :class:`SparseInferMLP` so predictor construction, alpha
    scheduling and the degenerate single-sequence path are shared with the
    batch=1 engine.
    """

    weights: ModelWeights
    predictor: Optional[SparseInferPredictor] = None
    use_actual_sparsity: bool = True
    # Below this intersection-skip fraction, row gathering costs more than
    # the rows it avoids (a numpy fancy-index copies the submatrix), so
    # the executor computes dense and relies on the per-sequence masks
    # alone.  Purely an execution strategy: predicted-skip accounting and
    # outputs are identical either way.
    gather_threshold: float = 0.125
    stats: BatchedMLPStats = field(default_factory=BatchedMLPStats)

    def __post_init__(self):
        self.single = SparseInferMLP(
            weights=self.weights,
            predictor=self.predictor,
            use_actual_sparsity=self.use_actual_sparsity,
        )
        self.predictor = self.single.predictor
        self._act = self.single._act

    def run_batch(self, layer: int, xs: np.ndarray) -> np.ndarray:
        """One layer's MLP for ``(B, d)`` inputs; returns ``(B, d)``."""
        xs = np.asarray(xs)
        if xs.ndim != 2:
            raise ValueError(f"expected (B, d) inputs, got shape {xs.shape}")
        batch = xs.shape[0]
        lw = self.weights.layers[layer]
        k = lw.w_gate_rows.shape[0]
        prediction = self.predictor.predict_intersection(layer, xs)

        self.stats.calls += 1
        self.stats.sequences += batch
        self.stats.rows_total += k
        self.stats.predicted_skip_seq += float(
            prediction.per_sequence_sparsity.sum()
        )

        if batch == 1:
            out = self.single.run_with_skip(layer, xs[0], prediction.skip[0])
            self.stats.rows_read_gate += k - int(prediction.skip[0].sum())
            return out[None, :]

        intersection = prediction.intersection_skip
        n_skippable = int(intersection.sum())
        self.stats.rows_read_gate += k - n_skippable
        if n_skippable == k:
            return np.zeros((batch, lw.w_down_rows.shape[1]), dtype=np.float32)

        if n_skippable < self.gather_threshold * k:
            # Thin intersection: compute every row once for the batch and
            # re-zero per sequence.  ``rows_read_gate`` keeps counting the
            # intersection's complement, so the measured-vs-``skip^B``
            # comparison is execution-independent.
            keep = ~prediction.skip                          # (B, k)
            h1 = self._act(xs @ lw.w_gate_rows.T)            # (B, k)
            h1 = np.where(keep, h1, np.float32(0.0))
            h3 = h1 * (xs @ lw.w_up_rows.T)
            out = h3 @ lw.w_down_rows                        # (B, d)
            return out.astype(np.float32)

        rows = np.flatnonzero(~intersection)
        # Per-sequence keep masks restricted to the computed rows.
        keep = ~prediction.skip[:, rows]                     # (B, m)

        # Gate GEMM over the intersection's complement, one weight read
        # for the whole batch; rows a sequence predicted sparse are
        # re-zeroed so its values match single-sequence execution.
        h1 = self._act(xs @ lw.w_gate_rows[rows].T)          # (B, m)
        h1 = np.where(keep, h1, np.float32(0.0))

        if self.use_actual_sparsity:
            # Batch-level +AS: a row only stays in the up/down reads if
            # some sequence still has it live after ReLU + prediction.
            live = np.flatnonzero((h1 != 0.0).any(axis=0))
            rows = rows[live]
            h1 = h1[:, live]
        if rows.size == 0:
            return np.zeros((batch, lw.w_down_rows.shape[1]), dtype=np.float32)

        h3 = h1 * (xs @ lw.w_up_rows[rows].T)                # (B, m')
        out = h3 @ lw.w_down_rows[rows]                      # (B, d)
        return out.astype(np.float32)

    def reset_stats(self) -> None:
        self.stats = BatchedMLPStats()
        self.single.reset_stats()

"""Speculative self-drafting configuration.

The paper's sign-bit predictor gives every layer two MLP paths over the
*same* weights: the exact dense path and a sparse path whose cost is
controlled by the skip threshold ``alpha``.  Speculative self-drafting
exploits that asymmetry without a second model: a *draft* executor runs
the sparse path at an aggressive alpha (cheap, approximate), proposes
``k`` tokens per decode tick, and one chunked causal GEMM pass at the
engine's normal alpha *verifies* all ``k`` draft positions plus the
bonus token in a single shot -- the same machinery chunked prefill uses.
Accepted tokens are exactly what non-speculative decoding would have
emitted (greedy rows compare argmax; sampled rows re-draw from the
per-request stream against the verifier's logits), so output is
token-identical by construction and rejected draft K/V is rolled back
with ``truncate``.

:class:`SpecConfig` is the one knob object, accepted by
``BatchedEngine``, ``build_batched_engine`` and
``ContinuousBatchingScheduler`` (``speculation=...``).  See
``docs/serving.md`` for the draft/verify/rollback walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpecConfig:
    """Knobs for speculative self-drafting.

    ``k`` is the draft depth ceiling: at most ``k`` cheap draft steps
    per sequence per tick (capped further by the request's remaining
    token budget).  ``draft_alpha`` is the sparse skip threshold of the
    draft executor -- **lower** is more aggressive (a neuron is skipped
    when ``alpha * n_pos < n_neg``), so drafts get cheaper and sloppier
    as it drops below the engine's serving alpha.

    With ``adaptive=True`` each sequence tracks a rolling EMA of its
    acceptance rate and moves its personal depth between 1 and ``k``:
    above ``raise_threshold`` the depth grows (drafts are landing;
    speculate deeper), below ``lower_threshold`` it shrinks (drafts are
    being rejected; stop paying for them).
    """

    k: int = 4
    draft_alpha: float = 0.8
    adaptive: bool = True
    ema_decay: float = 0.7
    raise_threshold: float = 0.8
    lower_threshold: float = 0.4

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.draft_alpha <= 0:
            raise ValueError(
                f"draft_alpha must be > 0, got {self.draft_alpha}"
            )
        if not 0.0 <= self.ema_decay < 1.0:
            raise ValueError(
                f"ema_decay must be in [0, 1), got {self.ema_decay}"
            )
        if not 0.0 <= self.lower_threshold <= self.raise_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= lower_threshold <= "
                f"raise_threshold <= 1, got lower={self.lower_threshold} "
                f"raise={self.raise_threshold}"
            )

"""Serving request/response records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..model.sampler import SamplerConfig


@dataclass(frozen=True)
class Request:
    """One generation request submitted to the serving queue.

    Semantics match :meth:`repro.model.inference.InferenceModel.generate`:
    decoding of up to ``max_new_tokens`` tokens, stopping early if the
    next token falls in ``stop_ids`` (the stop token is not emitted).

    ``sampling`` selects this request's decode mode: ``None`` inherits
    the engine's default :class:`~repro.model.sampler.SamplerConfig`
    (greedy argmax unless the engine was built with a ``sampling``
    override).  A stochastic config draws from a per-request RNG stream
    keyed by ``(sampling.seed, request_id)``, so the request's tokens
    reproduce regardless of batch composition, admission order, or
    preemption (see :class:`~repro.model.sampler.BatchedSampler`).

    ``priority`` orders requests for *preemption only*: admission stays
    FIFO (plus the bounded ``reorder_window``), but a scheduler running
    with ``preemption=True`` may evict a resident sequence of strictly
    lower priority to make room for a page-starved higher-priority head.
    Equal priorities never preempt each other, so the default (0
    everywhere) keeps preemption a no-op.
    """

    request_id: int
    prompt_ids: tuple
    max_new_tokens: int
    stop_ids: Optional[frozenset] = None
    priority: int = 0
    sampling: Optional[SamplerConfig] = None

    def __post_init__(self):
        if not self.prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        object.__setattr__(self, "prompt_ids", tuple(int(t) for t in self.prompt_ids))
        if self.stop_ids is not None:
            object.__setattr__(self, "stop_ids", frozenset(int(t) for t in self.stop_ids))
        object.__setattr__(self, "priority", int(self.priority))
        if self.sampling is not None and not isinstance(self.sampling, SamplerConfig):
            raise ValueError(
                f"sampling must be a SamplerConfig or None, got {type(self.sampling).__name__}"
            )

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    def common_prefix_len(self, other_prompt_ids) -> int:
        """Length of the longest common prompt prefix with ``other``.

        Positions inside the common prefix attend over identical token
        context, so their cached K/V is bit-identical across the two
        requests and shareable via ``PagedKVCache.fork``.  Convenience
        for workload analysis and tests; the engine's
        :class:`~repro.serving.engine.PrefixIndex` performs the
        equivalent matching inline over its page-aligned hash buckets.
        """
        n = 0
        for a, b in zip(self.prompt_ids, other_prompt_ids):
            if a != int(b):
                break
            n += 1
        return n


@dataclass
class Completion:
    """A finished request plus its scheduling telemetry.

    Steps are scheduler ticks: ``admitted_step`` is the tick whose
    admission phase prefetched the prompt, ``finished_step`` the tick that
    emitted (or declined, on a stop token) the final token.  Their
    difference is the queuing+decode latency in ticks.  ``decode_steps``
    counts the model forwards the request participated in after its
    prefill -- the admission tick's decode is included, so it is the
    number directly comparable with a sequential engine's per-request
    forward count.

    ``error`` is set when the scheduler rejected the request instead of
    decoding it (e.g. it could never fit a KV slot); rejected requests
    complete with no generated tokens rather than crashing the batch
    they would have joined.

    Latency telemetry (budgeted/preemptive scheduling, PR 6):
    ``first_token_step`` is the tick that emitted the first token (-1
    when none was); ``ttft_seconds`` is wall-clock submit-to-first-token
    (None when the request bypassed :meth:`ContinuousBatchingScheduler.
    submit` or emitted nothing); ``itl_seconds`` holds the wall-clock
    gap before each token after the first, so a resident stalled behind
    a long admission shows up as one large entry; ``preemptions`` counts
    how many times this request was evicted mid-flight and later
    resumed.
    """

    request: Request
    generated_ids: list = field(default_factory=list)
    admitted_step: int = 0
    finished_step: int = 0
    decode_steps: int = 0      # batched forwards this request took part in
    error: Optional[str] = None
    first_token_step: int = -1
    preemptions: int = 0
    ttft_seconds: Optional[float] = None
    itl_seconds: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def n_generated(self) -> int:
        return len(self.generated_ids)

    @property
    def latency_steps(self) -> int:
        return self.finished_step - self.admitted_step

"""Serving request/response records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..model.sampler import SamplerConfig


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objective for one request, in scheduler *ticks*.

    Deadlines are expressed in scheduler ticks, not wall-clock seconds:
    a tick is the serving stack's deterministic unit of time (the
    virtual clock of :mod:`repro.serving.loadgen` advances one tick per
    :meth:`ContinuousBatchingScheduler.step`), so whether a run met its
    SLOs is a pure function of the request trace -- the same trace
    always produces the same goodput, on any machine.

    ``ttft_steps`` bounds time-to-first-token: the first token must be
    emitted within that many ticks of :meth:`~repro.serving.scheduler.
    ContinuousBatchingScheduler.submit` (the earliest possible TTFT is
    1 -- submission happens between ticks, emission inside one).
    ``itl_steps`` bounds the inter-token gap: each later token must
    arrive within that many ticks of the previous one.  ``None``
    disables that deadline.  ``slo_class`` tags the request's traffic
    class for per-class goodput accounting
    (:attr:`~repro.serving.scheduler.ServeReport.class_stats`).
    """

    slo_class: str = "standard"
    ttft_steps: Optional[int] = None
    itl_steps: Optional[int] = None

    def __post_init__(self):
        if not self.slo_class or not isinstance(self.slo_class, str):
            raise ValueError(
                f"slo_class must be a non-empty string, got {self.slo_class!r}"
            )
        for name in ("ttft_steps", "itl_steps"):
            value = getattr(self, name)
            if value is None:
                continue
            value = int(value)
            if value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")
            object.__setattr__(self, name, value)

    def met(self, submitted_step: int, emit_steps) -> bool:
        """Did a completion with these emission ticks meet the SLO?

        ``emit_steps`` is the tick stamp of every emitted token in
        order.  A request that emitted nothing (``max_new_tokens == 0``
        or an immediate stop token) meets its SLO vacuously -- it never
        owed a token.  Rejected/shed requests are accounted separately
        by the scheduler and never reach this check.
        """
        if self.ttft_steps is not None and emit_steps:
            if emit_steps[0] - submitted_step > self.ttft_steps:
                return False
        if self.itl_steps is not None:
            for before, after in zip(emit_steps, emit_steps[1:]):
                if after - before > self.itl_steps:
                    return False
        return True


@dataclass(frozen=True)
class Request:
    """One generation request submitted to the serving queue.

    Semantics match :meth:`repro.model.inference.InferenceModel.generate`:
    decoding of up to ``max_new_tokens`` tokens, stopping early if the
    next token falls in ``stop_ids`` (the stop token is not emitted).

    ``sampling`` selects this request's decode mode: ``None`` inherits
    the engine's default :class:`~repro.model.sampler.SamplerConfig`
    (greedy argmax unless the engine was built with a ``sampling``
    override).  A stochastic config draws from a per-request RNG stream
    keyed by ``(sampling.seed, request_id)``, so the request's tokens
    reproduce regardless of batch composition, admission order, or
    preemption (see :class:`~repro.model.sampler.BatchedSampler`).

    ``priority`` composes with two scheduler knobs, deterministically:

    * **Preemption** (``preemption=True``): a starved admission
      candidate may evict a resident of *strictly lower* priority.
      Equal priorities never preempt each other, so the default (0
      everywhere) keeps preemption a no-op.
    * **Deadline admission** (``admission="deadline"``): admission
      order is earliest-TTFT-deadline-first, and ``priority`` breaks
      deadline *ties* -- among equal deadlines the higher priority is
      admitted first, and equal-priority equal-deadline candidates fall
      back to FIFO (queue order).  Under the default
      ``admission="fifo"`` priority never affects admission order.

    ``slo`` attaches a deadline contract (:class:`SLOSpec`): deadline
    admission orders and sheds by it, and the
    :class:`~repro.serving.scheduler.ServeReport` goodput counters
    judge every completion against it.  ``None`` means no deadline --
    the request is never shed, sorts after every deadline-bearing
    request under deadline admission (but still cannot be starved: the
    bounded-bypass rule forces the FIFO head through), and its tokens
    always count as goodput.
    """

    request_id: int
    prompt_ids: tuple
    max_new_tokens: int
    stop_ids: Optional[frozenset] = None
    priority: int = 0
    sampling: Optional[SamplerConfig] = None
    slo: Optional[SLOSpec] = None

    def __post_init__(self):
        if not self.prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        object.__setattr__(self, "prompt_ids", tuple(int(t) for t in self.prompt_ids))
        if self.stop_ids is not None:
            object.__setattr__(self, "stop_ids", frozenset(int(t) for t in self.stop_ids))
        object.__setattr__(self, "priority", int(self.priority))
        if self.sampling is not None and not isinstance(self.sampling, SamplerConfig):
            raise ValueError(
                f"sampling must be a SamplerConfig or None, got {type(self.sampling).__name__}"
            )
        if self.slo is not None and not isinstance(self.slo, SLOSpec):
            raise ValueError(
                f"slo must be an SLOSpec or None, got {type(self.slo).__name__}"
            )

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    def common_prefix_len(self, other_prompt_ids) -> int:
        """Length of the longest common prompt prefix with ``other``.

        Positions inside the common prefix attend over identical token
        context, so their cached K/V is bit-identical across the two
        requests and shareable via ``PagedKVCache.fork``.  Convenience
        for workload analysis and tests; the engine's
        :class:`~repro.serving.engine.PrefixIndex` performs the
        equivalent matching inline over its page-aligned hash buckets.
        """
        n = 0
        for a, b in zip(self.prompt_ids, other_prompt_ids):
            if a != int(b):
                break
            n += 1
        return n


@dataclass
class Completion:
    """A finished request plus its scheduling telemetry.

    Steps are scheduler ticks: ``admitted_step`` is the tick whose
    admission phase prefetched the prompt, ``finished_step`` the tick that
    emitted (or declined, on a stop token) the final token.  Their
    difference is the queuing+decode latency in ticks.  ``decode_steps``
    counts the model forwards the request participated in after its
    prefill -- the admission tick's decode is included, so it is the
    number directly comparable with a sequential engine's per-request
    forward count.

    ``error`` is set when the scheduler rejected the request instead of
    decoding it (e.g. it could never fit a KV slot); rejected requests
    complete with no generated tokens rather than crashing the batch
    they would have joined.  ``shed`` marks the deadline-admission
    load-shedding flavour of rejection: the request's TTFT deadline
    passed while it was still queued, so the scheduler dropped it
    (``error`` carries the ``"shed: ..."`` reason) instead of burning
    decode capacity on tokens that could no longer count as goodput.

    Latency telemetry (budgeted/preemptive scheduling, PR 6):
    ``first_token_step`` is the tick that emitted the first token (-1
    when none was); ``ttft_seconds`` is wall-clock submit-to-first-token
    (None when the request bypassed :meth:`ContinuousBatchingScheduler.
    submit` or emitted nothing); ``itl_seconds`` holds the wall-clock
    gap before each token after the first, so a resident stalled behind
    a long admission shows up as one large entry; ``preemptions`` counts
    how many times this request was evicted mid-flight and later
    resumed.

    SLO telemetry (deadline scheduling, PR 10) -- all in deterministic
    scheduler ticks: ``submitted_step`` is the tick count at
    ``submit()`` time (0 when the request was enqueued directly),
    ``emit_steps`` stamps the tick of every emitted token, and
    ``slo_met`` records the verdict of ``request.slo.met(...)`` (None
    when the request carried no SLO).  TTFT in ticks is
    ``emit_steps[0] - submitted_step``; inter-token gaps are the
    consecutive differences.
    """

    request: Request
    generated_ids: list = field(default_factory=list)
    admitted_step: int = 0
    finished_step: int = 0
    decode_steps: int = 0      # batched forwards this request took part in
    error: Optional[str] = None
    first_token_step: int = -1
    preemptions: int = 0
    ttft_seconds: Optional[float] = None
    itl_seconds: list = field(default_factory=list)
    submitted_step: int = 0
    emit_steps: list = field(default_factory=list)
    shed: bool = False
    slo_met: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def ttft_steps(self) -> Optional[int]:
        """Submit-to-first-token in scheduler ticks (None if no token)."""
        if not self.emit_steps:
            return None
        return self.emit_steps[0] - self.submitted_step

    @property
    def itl_steps(self) -> list:
        """Tick gap before each token after the first."""
        return [
            after - before
            for before, after in zip(self.emit_steps, self.emit_steps[1:])
        ]

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def n_generated(self) -> int:
        return len(self.generated_ids)

    @property
    def latency_steps(self) -> int:
        return self.finished_step - self.admitted_step

"""Aggregate ``benchmarks/results/*.json`` into one trajectory table.

Every benchmark under ``benchmarks/`` writes a machine-readable payload
(keyed by ``"benchmark"``) into ``benchmarks/results/`` when it runs;
this script folds whatever is present into a single markdown summary --
benchmark name, its headline metric, supporting detail, and the date the
result file was last refreshed -- so the perf trajectory across commits
can be read (and diffed) in one place.

Benchmarks with a known shape get a hand-written extractor for their
headline; anything else falls back to the largest ``speedup``-named
number found anywhere in its payload, so new benchmarks appear in the
table the moment they write JSON, extractor or not.

Run:  python scripts/bench_trajectory.py
"""

import json
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.reporting import markdown_table  # noqa: E402

RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def _speculative(payload: dict) -> tuple[str, str]:
    best = payload["best"]
    return (
        f"{payload['speedup']:.2f}x decode speedup",
        f"best at draft_alpha={best['draft_alpha']}, k={best['k']} "
        f"({best['acceptance_rate']:.0%} acceptance)",
    )


def _batched_attention(payload: dict) -> tuple[str, str]:
    best = max(payload["decode"], key=lambda p: p["speedup"])
    kind = "paged" if best["paged"] else "fixed"
    prefill = payload["prefill"]
    return (
        f"{best['speedup']:.2f}x decode step",
        f"batch={best['batch']} ({kind}); chunked prefill "
        f"{prefill['speedup']:.2f}x",
    )


def _batched_sampling(payload: dict) -> tuple[str, str]:
    best = max(payload["kernel"]["points"], key=lambda p: p["speedup"])
    return (
        f"{best['speedup']:.2f}x sampler kernel",
        f"batch={best['batch']} vs per-row scalar loop",
    )


def _interleaved_prefill(payload: dict) -> tuple[str, str]:
    inline = payload["inline"]["resident_max_itl_ms"]
    budgeted = payload["budgeted"]["resident_max_itl_ms"]
    ratio = inline / budgeted if budgeted else float("inf")
    return (
        f"{ratio:.2f}x lower max ITL",
        f"resident stall {inline:.1f} -> {budgeted:.1f} ms under "
        f"step_budget={payload['budgeted']['step_budget']}",
    )


def _prefix_cache(payload: dict) -> tuple[str, str]:
    cached = payload["prefix_cache"]
    return (
        f"{cached['prefill_cache_fraction']:.0%} prompt tokens revived",
        f"{cached['prefill_tokens_revived']} tokens from cache across "
        f"{cached['revived_admissions']} admissions",
    )


def _serving_throughput(payload: dict) -> tuple[str, str]:
    best = max(payload["points"], key=lambda p: p["speedup_over_sequential"])
    return (
        f"{best['speedup_over_sequential']:.2f}x throughput",
        f"{best.get('label', 'best point')} vs sequential baseline",
    )


def _goodput(payload: dict) -> tuple[str, str]:
    ratios = {
        name: pair["deadline"]["goodput_tokens"]
        / pair["fifo"]["goodput_tokens"]
        for name, pair in payload["traces"].items()
    }
    best_name = max(ratios, key=ratios.get)
    shed = payload["traces"][best_name]["deadline"]["shed_requests"]
    factor = payload["workload"]["overload_factor"]
    return (
        f"{ratios[best_name]:.2f}x goodput",
        f"deadline vs fifo on {best_name} trace at {factor}x overload "
        f"({shed} requests shed)",
    )


EXTRACTORS = {
    "speculative": _speculative,
    "batched_attention": _batched_attention,
    "batched_sampling": _batched_sampling,
    "interleaved_prefill": _interleaved_prefill,
    "prefix_cache": _prefix_cache,
    "serving_throughput": _serving_throughput,
    "overload_goodput": _goodput,
}


def _max_speedup(node) -> float:
    """Largest number under any ``speedup``-prefixed key, recursively."""
    best = float("-inf")
    if isinstance(node, dict):
        for key, value in node.items():
            if key.startswith("speedup") and isinstance(value, (int, float)):
                best = max(best, float(value))
            else:
                best = max(best, _max_speedup(value))
    elif isinstance(node, list):
        for value in node:
            best = max(best, _max_speedup(value))
    return best


def _generic(payload: dict) -> tuple[str, str]:
    best = _max_speedup(payload)
    if best > float("-inf"):
        return f"{best:.2f}x speedup", "best speedup found in payload"
    return "n/a", "no speedup-like metric in payload"


def summarise(results_dir: Path = RESULTS_DIR) -> list[tuple[str, str, str, str]]:
    """One ``(benchmark, headline, detail, date)`` row per results JSON."""
    rows = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            rows.append((path.stem, "unreadable", str(path), "-"))
            continue
        name = payload.get("benchmark", path.stem)
        extractor = EXTRACTORS.get(name, _generic)
        try:
            headline, detail = extractor(payload)
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            headline, detail = _generic(payload)
        stamp = datetime.fromtimestamp(
            path.stat().st_mtime, tz=timezone.utc
        ).date().isoformat()
        rows.append((name, headline, detail, stamp))
    return rows


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(f"no results directory at {RESULTS_DIR}; "
              "run the benchmarks first (CHECK_SLOW=1 scripts/check.sh)")
        return 1
    rows = summarise()
    if not rows:
        print(f"no results JSON under {RESULTS_DIR}; "
              "run the benchmarks first (CHECK_SLOW=1 scripts/check.sh)")
        return 1
    print(markdown_table(["benchmark", "headline", "detail", "date"], rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/bin/sh
# Tier-1 gate: the exact verify command from ROADMAP.md.
# Usage: scripts/check.sh [extra pytest args]
#   scripts/check.sh                 # fast tier-1 suite
#   scripts/check.sh -m slow         # long-running tests only
#   scripts/check.sh -m ""           # everything
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"

#!/bin/sh
# Tier-1 gate: the exact verify command from ROADMAP.md.
# Usage: scripts/check.sh [extra pytest args]
#   scripts/check.sh                 # fast tier-1 suite
#   scripts/check.sh -m slow         # long-running tests only
#   scripts/check.sh -m ""           # everything
#   CHECK_SLOW=1 scripts/check.sh    # tier-1 + slow benchmark smokes
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"
# Serving + paged-KV suites (including the fork/COW/prefix-cache
# property suite) run explicitly on the default (tier-1) invocation:
# collection filters or testpath drift must never silently drop the
# serving layer's coverage.  Skipped when the caller passed their own
# pytest args (-m slow etc.) to keep those selections exact.
if [ "$#" -eq 0 ]; then
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q \
        tests/test_serving.py tests/test_paged_kv.py \
        tests/test_paged_properties.py tests/test_scheduler_properties.py \
        tests/test_batched_sampling.py tests/test_speculative.py \
        tests/test_loadgen.py tests/test_slo_scheduling.py \
        tests/test_bench_trajectory.py tests/test_analysis.py
    # Invariant linter (rule catalog: docs/analysis.md).  Subsumes the
    # old docs-freshness heredoc: the docs-knobs rule fails the gate if
    # an engine/scheduler knob is missing from docs/serving.md, and the
    # telemetry-docs rule if a ServeReport field goes undocumented or
    # unexercised.  Also enforces RNG/clock purity, slot/page release
    # pairing, and hot-path vectorisation.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.analysis
fi
# Slow smokes of the paged-KV benchmark (equal-budget >= 2x concurrency
# and batch=1 bit-identity), the prefix-sharing benchmark (>= 1.5x
# concurrency from forked admission, intersection decays slower than
# skip^B), the prefix-cache benchmark (>= 50% of prompt tokens revived
# on bursty non-overlapping traffic, tokens identical to cold prefill),
# the batched-attention benchmark (best-point decode-step win,
# >= 2x chunked-prefill win, tokens identical), the
# interleaved-prefill benchmark (budgeted ticks bound the worst tick
# feed to step_budget and shave the residents' max inter-token stall,
# tokens identical to inline prefill), and the batched-sampling
# benchmark (one vectorised sampler call beats the per-row scalar loop
# at batch >= 4, draws identical, serving tokens invariant to batch
# composition), and the speculative-decoding benchmark (draft_alpha x k
# sweep, tokens identical to speculation=None at every point, best
# point >= 1.3x decode wall-clock; JSON into benchmarks/results/), and
# the overload-goodput benchmark (seeded Poisson + bursty traces at
# 1.5x measured capacity: deadline admission strictly out-goodputs
# fifo on the identical trace, and fifo stays bit-identical with the
# SLOs stripped); opt in because they decode real workloads.
if [ "${CHECK_SLOW:-0}" = "1" ]; then
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q \
        -m slow -p no:cacheprovider benchmarks/bench_paged_kv.py \
        benchmarks/bench_prefix_sharing.py \
        benchmarks/bench_prefix_cache.py \
        benchmarks/bench_batched_attention.py \
        benchmarks/bench_interleaved_prefill.py \
        benchmarks/bench_batched_sampling.py \
        benchmarks/bench_speculative.py \
        benchmarks/bench_overload_goodput.py
fi
